// Load-balance sweep: traffic-aware partitioning and the online rebalancer
// against the count-balanced baseline, across workload shapes.
//
// Sweeps workload ∈ {uniform, zipf-1.0, flash-crowd, scan} × ψ ∈ {4, 16} ×
// policy ∈ {count, traffic, rebalance} on RT_2. `count` is the paper's
// prefix-count-balanced partition; `traffic` feeds the workload's
// per-prefix popularity weights (TraceGenerator::prefix_weights) into the
// weighted partitioner; `rebalance` keeps the count partition but runs the
// online LoadRebalancer, which samples per-LC arrival counters and live-
// migrates the hottest fragment off the most loaded LC (route churn runs
// concurrently so migrations exercise the delta-replay path). Per point the
// bench reports Jain's fairness index and the max per-LC load share, both
// for the partition's *expected* load under the workload's weight vector
// (static, packet-count independent) and for the *measured* per-LC FE
// lookup counts.
//
// Every run executes in verify mode and the bench exits nonzero if any
// packet is unaccounted for or disagrees with the churning full-table
// oracle, the expected-load vector breaks conservation (Σ per-LC loads must
// equal Σ weights — a star-bit prefix splits, never duplicates, its load),
// the rebalancer ledger breaks its conservation rules, the weighted
// partition's expected max load exceeds the count-balanced one anywhere, or
// — the paper-facing claim — traffic-aware partitioning fails to strictly
// improve Jain's fairness and max load share over count-balanced under
// Zipf-1.0 at ψ = 16.
//
// `--balance=count|traffic` pins the static-policy axis (the rebalance leg
// is skipped), `--rebalance-window=N` overrides the sampling window, and
// `--inject-staleness` arms the rebalancer's inject_stale fault hook — the
// cut-over structure misses the deltas buffered mid-copy, so the verify
// sweep MUST exit nonzero (the WILL_FAIL CI leg). With --json, static
// points additionally emit a `partition_balance` entry that
// `spal_report --check` recomputes from the raw per-LC load vector.
#include <cmath>

#include "bench_util.h"
#include "partition/weighted.h"

using namespace spal;

namespace {

enum class Policy { kCount, kTraffic, kRebalance };

const char* policy_name(Policy policy) {
  switch (policy) {
    case Policy::kCount: return "count";
    case Policy::kTraffic: return "traffic";
    case Policy::kRebalance: return "rebalance";
  }
  return "?";
}

struct Point {
  trace::WorkloadProfile profile;
  int psi;
  Policy policy;
};

struct PointResult {
  bench::PointOutput out;
  std::string balance_json;  ///< partition_balance entry (static policies)
  bool ok = false;
  double expected_jain = 0.0;
  double expected_max_share = 0.0;
  double measured_jain = 0.0;
  double measured_max_share = 0.0;
};

std::string fmt_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// The raw material for the `partition_balance` report point: ψ, the load
/// vector, its total, and the two fairness summaries — all recomputable
/// from `per_lc_loads` alone, which is exactly what spal_report --check
/// does.
std::string balance_entry(const std::string& label, int psi, Policy policy,
                          const std::vector<double>& loads) {
  std::string out = "{\"label\":\"" + label + "\",\"result\":{";
  out += "\"kind\":\"partition_balance\",";
  out += "\"psi\":" + std::to_string(psi) + ',';
  out += "\"balance\":\"" + std::string(policy_name(policy)) + "\",";
  double total = 0.0;
  for (const double x : loads) total += x;
  out += "\"total_weight\":" + fmt_double(total) + ',';
  out += "\"jain_fairness\":" + fmt_double(partition::jain_fairness(loads)) +
         ',';
  out += "\"max_share\":" + fmt_double(partition::max_share(loads)) + ',';
  out += "\"per_lc_loads\":[";
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (i > 0) out += ',';
    out += fmt_double(loads[i]);
  }
  out += "]}}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "Load balance: count vs traffic-weighted partitioning vs the online "
      "rebalancer, by workload",
      "workload,psi,policy,expected_jain,expected_max_share,measured_jain,"
      "measured_max_share,mean_cycles,p99_cycles,skew_detections,"
      "completed_migrations");
  bench::rt2();

  const std::vector<trace::WorkloadProfile> workloads{
      trace::profile_uniform(), trace::profile_zipf1(),
      trace::profile_flash_crowd(), trace::profile_scan()};
  const std::vector<int> psis{4, 16};
  std::vector<Policy> policies;
  if (args.balance_set) {
    policies = {args.balance_traffic ? Policy::kTraffic : Policy::kCount};
  } else {
    policies = {Policy::kCount, Policy::kTraffic, Policy::kRebalance};
  }
  // At 40 Gbps the mean inter-arrival is 10 cycles, so the trace spans
  // about 10 × packets_per_lc cycles; the default window gives the
  // rebalancer several sampling rounds within the trace.
  const std::uint64_t est_horizon =
      10 * static_cast<std::uint64_t>(args.packets_per_lc);
  const std::uint64_t window = args.rebalance_window_set
                                   ? args.rebalance_window
                                   : std::max<std::uint64_t>(1, est_horizon / 8);

  std::vector<Point> points;
  for (const auto& workload : workloads) {
    for (const int psi : psis) {
      for (const Policy policy : policies) {
        points.push_back(Point{workload, psi, policy});
      }
    }
  }

  const auto outputs = sim::parallel_sweep(points, [&](const Point& point) {
    const trace::TraceGenerator generator(point.profile, bench::rt2());
    const std::vector<double> weights = generator.prefix_weights();

    core::RouterConfig config =
        bench::figure_config(point.psi, args.packets_per_lc);
    config.engine = args.engine;
    config.execution = args.execution;
    config.threads = args.threads;
    if (point.policy == Policy::kTraffic) {
      config.partition_config.weights = weights;
    } else if (point.policy == Policy::kRebalance) {
      config.rebalancer.enabled = true;
      config.rebalancer.window_cycles = window;
      config.rebalancer.skew_threshold = 1.1;
      config.rebalancer.max_migrations = 8;
      config.rebalancer.inject_stale = args.inject_staleness;
      // Concurrent route churn, so migrations cross live updates and the
      // delta replay into the staged structure is what verify audits (and
      // what --inject-staleness breaks).
      config.update.interval_cycles = std::max<std::uint64_t>(1, window / 20);
      config.update.count = 200;
      config.update.seed = args.update_seed;
    }

    core::RouterSim router(bench::rt2(), config);
    const auto result = router.run_workload(point.profile, /*verify=*/true);

    // Static expected load of the partition the router actually built,
    // under this workload's weight vector.
    const std::vector<double> expected =
        partition::expected_loads(router.rot(), bench::rt2(), weights);
    std::vector<double> measured;
    measured.reserve(result.per_lc.size());
    for (const auto& lc : result.per_lc) {
      measured.push_back(static_cast<double>(lc.fe_lookups));
    }

    const std::uint64_t injected =
        static_cast<std::uint64_t>(args.packets_per_lc) *
        static_cast<std::uint64_t>(point.psi);
    const auto check = [&](bool held, const char* what) {
      if (!held) {
        std::fprintf(stderr, "bench_loadbalance: %s psi=%d policy=%s: %s\n",
                     point.profile.name.c_str(), point.psi,
                     policy_name(point.policy), what);
      }
      return held;
    };
    bool ok = check(result.resolved_packets == injected,
                    bench::rowf("packets lost (%llu resolved of %llu)",
                                static_cast<unsigned long long>(
                                    result.resolved_packets),
                                static_cast<unsigned long long>(injected))
                        .c_str());
    ok &= check(result.verify_mismatches == 0, "stale resolutions");
    ok &= check(result.latency.count() == injected, "latency count mismatch");
    // Conservation: a star-bit prefix splits its load across the fragments
    // it replicates into; nothing is created or lost.
    double weight_total = 0.0;
    for (const double w : weights) weight_total += w;
    double expected_total = 0.0;
    for (const double x : expected) expected_total += x;
    ok &= check(std::abs(expected_total - weight_total) <=
                    1e-9 * std::max(1.0, weight_total),
                "expected-load conservation broke");
    const auto& rb = result.rebalancer;
    if (point.policy == Policy::kRebalance) {
      // The rebalancer ledger rules spal_report --check enforces.
      ok &= check(rb.enabled && rb.skew_detections <= rb.windows,
                  "detections exceed windows");
      ok &= check(rb.skew_detections ==
                      rb.migrations_triggered + rb.skipped_in_flight +
                          rb.skipped_no_target + rb.skipped_budget,
                  "detection ledger broke");
      ok &= check(rb.completed_migrations + rb.aborted_migrations <=
                      rb.migrations_triggered,
                  "migration outcomes exceed triggers");
      ok &= check(result.failover.migrations == rb.completed_migrations,
                  "cutover count disagrees with failover ledger");
    }

    PointResult pr;
    pr.ok = ok;
    pr.expected_jain = partition::jain_fairness(expected);
    pr.expected_max_share = partition::max_share(expected);
    pr.measured_jain = partition::jain_fairness(measured);
    pr.measured_max_share = partition::max_share(measured);
    pr.out.row = bench::rowf(
        "%s,%d,%s,%.4f,%.4f,%.4f,%.4f,%.3f,%llu,%llu,%llu%s\n",
        point.profile.name.c_str(), point.psi, policy_name(point.policy),
        pr.expected_jain, pr.expected_max_share, pr.measured_jain,
        pr.measured_max_share, result.mean_lookup_cycles(),
        static_cast<unsigned long long>(result.latency.percentile(0.99)),
        static_cast<unsigned long long>(rb.skew_detections),
        static_cast<unsigned long long>(rb.completed_migrations),
        ok ? "" : ",CONSERVATION_FAILURE");
    if (args.json) {
      const std::string label = bench::rowf(
          "workload=%s,psi=%d,policy=%s", point.profile.name.c_str(),
          point.psi, policy_name(point.policy));
      pr.out.json = bench::json_point(label, result);
      if (point.policy != Policy::kRebalance) {
        pr.balance_json = balance_entry(label, point.psi, point.policy,
                                        expected);
      }
    }
    return pr;
  });

  int failures = 0;
  std::vector<std::string> entries;
  for (const auto& pr : outputs) {
    std::fputs(pr.out.row.c_str(), stdout);
    if (!pr.out.json.empty()) entries.push_back(pr.out.json);
    if (!pr.balance_json.empty()) entries.push_back(pr.balance_json);
    if (!pr.ok) ++failures;
  }

  // Cross-policy invariants over the expected-load summaries.
  const auto find = [&](const trace::WorkloadProfile& w, int psi,
                        Policy policy) -> const PointResult* {
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].profile.name == w.name && points[i].psi == psi &&
          points[i].policy == policy) {
        return &outputs[i];
      }
    }
    return nullptr;
  };
  for (const auto& workload : workloads) {
    for (const int psi : psis) {
      const PointResult* count = find(workload, psi, Policy::kCount);
      const PointResult* traffic = find(workload, psi, Policy::kTraffic);
      if (count == nullptr || traffic == nullptr) continue;
      // Construction guarantee: the weighted partitioner evaluates the
      // count-balanced candidate too and keeps the better one, so its max
      // expected share can never exceed count-balanced.
      if (traffic->expected_max_share >
          count->expected_max_share + 1e-9) {
        std::fprintf(stderr,
                     "bench_loadbalance: %s psi=%d weighted max share %.6f "
                     "exceeds count-balanced %.6f\n",
                     workload.name.c_str(), psi, traffic->expected_max_share,
                     count->expected_max_share);
        ++failures;
      }
      // The paper-facing claim: under the canonical Zipf-1.0 skew at
      // ψ = 16, traffic-aware partitioning strictly improves both fairness
      // summaries over count-balanced.
      if (workload.name == "zipf-1.0" && psi == 16) {
        if (!(traffic->expected_jain > count->expected_jain &&
              traffic->expected_max_share < count->expected_max_share)) {
          std::fprintf(
              stderr,
              "bench_loadbalance: zipf-1.0 psi=16 weighted partitioning did "
              "not improve on count-balanced (jain %.6f vs %.6f, max share "
              "%.6f vs %.6f)\n",
              traffic->expected_jain, count->expected_jain,
              traffic->expected_max_share, count->expected_max_share);
          ++failures;
        }
      }
    }
  }

  bench::write_json_report(args, "loadbalance", entries);
  if (failures > 0) {
    std::fprintf(stderr, "bench_loadbalance: %d point(s) failed\n", failures);
    return 1;
  }
  return 0;
}
