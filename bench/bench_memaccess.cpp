// Reproduces the Sec. 5.1 access-count measurements: mean memory accesses
// per lookup for each trie over RT_1 and RT_2, and the FE matching time
// they imply (12 ns per access + 120 ns of matching code, in 5 ns cycles).
//
// Paper reference: Lulea 6.2 (RT_1) / 6.6 (RT_2) accesses -> ~40-cycle FE;
// DP ~16 accesses -> ~62-cycle FE.
#include "bench_util.h"

using namespace spal;

namespace {

void report(const char* table_name, const net::RouteTable& table) {
  const struct {
    trie::TrieKind kind;
    const char* label;
  } kTries[] = {
      {trie::TrieKind::kBinary, "binary"},
      {trie::TrieKind::kDp, "dp"},
      {trie::TrieKind::kLulea, "lulea"},
      {trie::TrieKind::kLc, "lc"},
      {trie::TrieKind::kGupta, "gupta"},
      {trie::TrieKind::kStride, "stride_16_8_8"},
  };
  for (const auto& [kind, label] : kTries) {
    const auto index = trie::build_lpm(kind, table);
    const double accesses =
        trie::mean_accesses_per_lookup(*index, table, 200'000, 0x5eed);
    // Sec. 5.1's model: accesses x 12 ns + ~120 ns code, 5 ns cycles.
    const double fe_cycles = (accesses * 12.0 + 120.0) / 5.0;
    std::printf("%s,%s,%.2f,%.1f,%zu\n", label, table_name, accesses, fe_cycles,
                index->storage_bytes() / 1024);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Sec. 5.1: mean memory accesses per lookup and implied FE service time",
      "trie,table,mean_accesses,fe_cycles,storage_kbytes");
  report("RT_1", bench::rt1());
  report("RT_2", bench::rt2());
  return 0;
}
