// Event-engine micro bench: per-event cost of the binary-heap EventQueue vs
// the CalendarQueue across the schedule patterns the router simulation
// actually produces. Emits one machine-readable JSON document on stdout so
// future PRs can track the perf trajectory:
//
//   {"bench":"engine_micro","events":N,"results":[
//     {"engine":"heap","pattern":"hold","ns_per_event":31.2,"checksum":...},
//     ...]}
//
// Patterns:
//   hold            classic hold model: steady population, pop-one/push-one
//                   within a bounded horizon (the DES steady state)
//   same_cycle      bursty: each pop pushes a batch at one shared future
//                   cycle (waiting-list release storms)
//   upfront_drain   every event pre-scheduled (packet arrivals), then a pure
//                   drain with occasional near-future completions
//   far_future      bimodal: 1/8 of pushes land ~1M cycles out (overflow
//                   heap path)
//
// Both engines are also cross-checked: each pattern's pop sequence must be
// identical (time and payload), which doubles as a fast equivalence check.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "sim/calendar_queue.h"
#include "sim/engine.h"

using namespace spal;

namespace {

struct Payload {
  std::uint64_t id;
  std::uint64_t tag;
};

/// A deterministic op tape: replaying the same tape against both engines
/// yields comparable timings and identical pop sequences.
struct Op {
  std::uint64_t delta;  ///< schedule offset from the last popped time
  int pushes;           ///< events to push after this pop (0 = drain only)
};

std::vector<Op> make_tape(const char* pattern, std::size_t events,
                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Op> tape;
  tape.reserve(events);
  if (std::strcmp(pattern, "hold") == 0) {
    for (std::size_t i = 0; i < events; ++i) {
      tape.push_back({1 + rng() % 512, 1});
    }
  } else if (std::strcmp(pattern, "same_cycle") == 0) {
    // One shared release cycle per 8-burst, mimicking waiting-list storms.
    for (std::size_t i = 0; i < events; ++i) {
      tape.push_back({64 + rng() % 64, (i % 8 == 0) ? 8 : 0});
    }
  } else if (std::strcmp(pattern, "upfront_drain") == 0) {
    for (std::size_t i = 0; i < events; ++i) {
      tape.push_back({2 + rng() % 17, (i % 8 == 0) ? 1 : 0});
    }
  } else {  // far_future
    for (std::size_t i = 0; i < events; ++i) {
      tape.push_back({(i % 8 == 7) ? 1'000'000 + rng() % 4096 : 1 + rng() % 256, 1});
    }
  }
  return tape;
}

/// Replays one tape: prefill, then pop/push per the tape. Returns a checksum
/// of the pop sequence (order-sensitive) so runs can be compared.
template <typename Queue>
std::uint64_t replay(Queue& queue, const char* pattern,
                     const std::vector<Op>& tape) {
  const bool upfront = std::strcmp(pattern, "upfront_drain") == 0;
  std::uint64_t id = 0;
  std::uint64_t now = 0;
  if (upfront) {
    // The router knows its arrival horizon up front; mirror that here so the
    // calendar sizes its bucket width to fit the whole span in one lap.
    std::uint64_t horizon = 0;
    for (const Op& op : tape) horizon += op.delta;
    if constexpr (requires(Queue& q) { q.reserve(std::size_t{}, std::uint64_t{}); }) {
      queue.reserve(tape.size(), horizon);
    } else {
      queue.reserve(tape.size());
    }
    std::uint64_t t = 0;
    for (const Op& op : tape) {
      t += op.delta;
      queue.schedule(t, Payload{id, id ^ t});
      ++id;
    }
  } else {
    // Steady-state population of 4K events.
    std::mt19937_64 rng(7);
    for (int i = 0; i < 4096; ++i) {
      queue.schedule(rng() % 4096, Payload{id, id});
      ++id;
    }
  }
  std::uint64_t checksum = 0;
  std::size_t op_index = 0;
  while (!queue.empty()) {
    auto [time, payload] = queue.pop();
    now = time;
    checksum = checksum * 0x9e3779b97f4a7c15ULL + (payload.id ^ now);
    if (op_index < tape.size()) {
      const Op& op = tape[op_index++];
      const int pushes = upfront ? (op.pushes != 0 ? 1 : 0) : op.pushes;
      for (int p = 0; p < pushes; ++p) {
        queue.schedule(now + op.delta, Payload{id, id ^ now});
        ++id;
      }
    }
  }
  return checksum;
}

struct Measurement {
  double ns_per_event;
  std::uint64_t events_processed;
  std::uint64_t checksum;
};

template <typename Queue>
Measurement measure(const char* pattern, std::size_t events) {
  const std::vector<Op> tape = make_tape(pattern, events, /*seed=*/42);
  Queue queue;
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t checksum = replay(queue, pattern, tape);
  const auto stop = std::chrono::steady_clock::now();
  // Total pops ≈ prefill + pushes; use the tape-derived count for the rate.
  std::uint64_t processed = std::strcmp(pattern, "upfront_drain") == 0
                                ? events + events / 8
                                : 4096 + events;
  const double ns =
      std::chrono::duration<double, std::nano>(stop - start).count();
  return {ns / static_cast<double>(processed), processed, checksum};
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events=", 9) == 0) {
      events = static_cast<std::size_t>(std::atoll(argv[i] + 9));
    }
  }
  const char* patterns[] = {"hold", "same_cycle", "upfront_drain", "far_future"};
  std::printf("{\"bench\":\"engine_micro\",\"events\":%zu,\"results\":[", events);
  bool first = true;
  int mismatches = 0;
  for (const char* pattern : patterns) {
    const Measurement heap =
        measure<sim::EventQueue<Payload>>(pattern, events);
    const Measurement calendar =
        measure<sim::CalendarQueue<Payload>>(pattern, events);
    if (heap.checksum != calendar.checksum) ++mismatches;
    std::printf("%s{\"engine\":\"heap\",\"pattern\":\"%s\",\"ns_per_event\":%.2f,"
                "\"events_processed\":%llu,\"checksum\":%llu}",
                first ? "" : ",", pattern, heap.ns_per_event,
                static_cast<unsigned long long>(heap.events_processed),
                static_cast<unsigned long long>(heap.checksum));
    std::printf(",{\"engine\":\"calendar\",\"pattern\":\"%s\",\"ns_per_event\":%.2f,"
                "\"events_processed\":%llu,\"checksum\":%llu,\"speedup\":%.2f}",
                pattern, calendar.ns_per_event,
                static_cast<unsigned long long>(calendar.events_processed),
                static_cast<unsigned long long>(calendar.checksum),
                heap.ns_per_event / calendar.ns_per_event);
    first = false;
  }
  std::printf("],\"order_mismatches\":%d}\n", mismatches);
  // A checksum mismatch means the engines popped different sequences — that
  // is a correctness bug, not a perf result.
  return mismatches == 0 ? 0 : 1;
}
