// Reproduces Fig. 4: mean lookup time (cycles) versus the mix value γ
// (the share of each LR-cache set devoted to remote-homed results) for
// ψ = 4, β = 4K blocks, five traces, 40 Gbps LCs, 40-cycle FE lookups.
//
// Paper shape: γ = 50% is best or nearly best for every trace; γ = 0%
// (no REM blocks survive) is clearly worse because every remote lookup
// re-crosses the fabric.
//
// Sweep points are grouped by γ: every trace at one γ shares the same
// router build (run() fully resets per-run state). Groups run concurrently
// on the sweep runner; rows print trace-major, identical to the sequential
// per-point output.
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 4: mean lookup time vs mix value (psi=4, beta=4K)",
                      "trace,gamma_percent,mean_cycles,hit_rate");
  bench::rt2();  // build the shared table once, outside the timed points

  const auto profiles = trace::all_profiles();
  const std::vector<double> gammas{0.0, 0.25, 0.50, 0.75};
  const auto points_by_gamma =
      sim::parallel_sweep(gammas, [&](double gamma) {
        core::RouterConfig config =
            bench::figure_config(4, args.packets_per_lc);
        config.engine = args.engine;
        config.execution = args.execution;
        config.threads = args.threads;
        config.cache.blocks = 4096;
        config.cache.remote_fraction = gamma;
        core::RouterSim router(bench::rt2(), config);
        std::vector<bench::PointOutput> points;
        points.reserve(profiles.size());
        for (const auto& profile : profiles) {
          const auto result = router.run_workload(profile);
          bench::PointOutput point;
          point.row = bench::rowf(
              "%s,%d,%.3f,%.4f\n", profile.name.c_str(),
              static_cast<int>(gamma * 100), result.mean_lookup_cycles(),
              result.cache_total.hit_rate());
          if (args.json) {
            point.json = bench::json_point(
                bench::rowf("trace=%s,gamma=%d", profile.name.c_str(),
                            static_cast<int>(gamma * 100)),
                result);
          }
          points.push_back(std::move(point));
        }
        return points;
      });
  std::vector<std::string> entries;
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    for (const auto& points : points_by_gamma) {
      std::fputs(points[p].row.c_str(), stdout);
      if (args.json) entries.push_back(points[p].json);
    }
  }
  bench::write_json_report(args, "fig4_mix", entries);
  return 0;
}
