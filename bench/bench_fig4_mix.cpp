// Reproduces Fig. 4: mean lookup time (cycles) versus the mix value γ
// (the share of each LR-cache set devoted to remote-homed results) for
// ψ = 4, β = 4K blocks, five traces, 40 Gbps LCs, 40-cycle FE lookups.
//
// Paper shape: γ = 50% is best or nearly best for every trace; γ = 0%
// (no REM blocks survive) is clearly worse because every remote lookup
// re-crosses the fabric.
#include "bench_util.h"

using namespace spal;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header("Fig. 4: mean lookup time vs mix value (psi=4, beta=4K)",
                      "trace,gamma_percent,mean_cycles,hit_rate");
  for (const auto& profile : trace::all_profiles()) {
    for (const double gamma : {0.0, 0.25, 0.50, 0.75}) {
      core::RouterConfig config = bench::figure_config(4, args.packets_per_lc);
      config.cache.blocks = 4096;
      config.cache.remote_fraction = gamma;
      core::RouterSim router(bench::rt2(), config);
      const auto result = router.run_workload(profile);
      std::printf("%s,%d,%.3f,%.4f\n", profile.name.c_str(),
                  static_cast<int>(gamma * 100), result.mean_lookup_cycles(),
                  result.cache_total.hit_rate());
    }
  }
  return 0;
}
