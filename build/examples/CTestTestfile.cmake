# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_quickstart "/root/repo/build/examples/quickstart" "4" "5000")
set_tests_properties(smoke_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_partition_explorer "/root/repo/build/examples/partition_explorer" "6" "10000" "7")
set_tests_properties(smoke_partition_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_trace_locality "/root/repo/build/examples/trace_locality" "20000")
set_tests_properties(smoke_trace_locality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_router_tour "/root/repo/build/examples/router_tour")
set_tests_properties(smoke_router_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_spal_cli "/root/repo/build/examples/spal_cli" "--psi=4" "--packets=5000" "--table-size=10000" "--verify")
set_tests_properties(smoke_spal_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(smoke_spal_cli_ipv6 "/root/repo/build/examples/spal_cli" "--ipv6" "--psi=4" "--packets=5000" "--table-size=10000" "--verify")
set_tests_properties(smoke_spal_cli_ipv6 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
