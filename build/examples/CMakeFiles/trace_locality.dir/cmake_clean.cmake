file(REMOVE_RECURSE
  "CMakeFiles/trace_locality.dir/trace_locality.cpp.o"
  "CMakeFiles/trace_locality.dir/trace_locality.cpp.o.d"
  "trace_locality"
  "trace_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
