# Empty compiler generated dependencies file for trace_locality.
# This may be replaced when dependencies are built.
