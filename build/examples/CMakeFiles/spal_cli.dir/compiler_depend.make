# Empty compiler generated dependencies file for spal_cli.
# This may be replaced when dependencies are built.
