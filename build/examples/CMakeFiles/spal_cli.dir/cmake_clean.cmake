file(REMOVE_RECURSE
  "CMakeFiles/spal_cli.dir/spal_cli.cpp.o"
  "CMakeFiles/spal_cli.dir/spal_cli.cpp.o.d"
  "spal_cli"
  "spal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
