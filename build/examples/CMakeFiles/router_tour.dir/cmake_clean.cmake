file(REMOVE_RECURSE
  "CMakeFiles/router_tour.dir/router_tour.cpp.o"
  "CMakeFiles/router_tour.dir/router_tour.cpp.o.d"
  "router_tour"
  "router_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
