# Empty dependencies file for router_tour.
# This may be replaced when dependencies are built.
