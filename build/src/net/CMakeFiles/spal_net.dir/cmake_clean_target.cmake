file(REMOVE_RECURSE
  "libspal_net.a"
)
