
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ip_addr.cpp" "src/net/CMakeFiles/spal_net.dir/ip_addr.cpp.o" "gcc" "src/net/CMakeFiles/spal_net.dir/ip_addr.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/net/CMakeFiles/spal_net.dir/prefix.cpp.o" "gcc" "src/net/CMakeFiles/spal_net.dir/prefix.cpp.o.d"
  "/root/repo/src/net/prefix6.cpp" "src/net/CMakeFiles/spal_net.dir/prefix6.cpp.o" "gcc" "src/net/CMakeFiles/spal_net.dir/prefix6.cpp.o.d"
  "/root/repo/src/net/route_table.cpp" "src/net/CMakeFiles/spal_net.dir/route_table.cpp.o" "gcc" "src/net/CMakeFiles/spal_net.dir/route_table.cpp.o.d"
  "/root/repo/src/net/table_gen.cpp" "src/net/CMakeFiles/spal_net.dir/table_gen.cpp.o" "gcc" "src/net/CMakeFiles/spal_net.dir/table_gen.cpp.o.d"
  "/root/repo/src/net/update_stream.cpp" "src/net/CMakeFiles/spal_net.dir/update_stream.cpp.o" "gcc" "src/net/CMakeFiles/spal_net.dir/update_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
