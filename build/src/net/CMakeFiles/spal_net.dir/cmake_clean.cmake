file(REMOVE_RECURSE
  "CMakeFiles/spal_net.dir/ip_addr.cpp.o"
  "CMakeFiles/spal_net.dir/ip_addr.cpp.o.d"
  "CMakeFiles/spal_net.dir/prefix.cpp.o"
  "CMakeFiles/spal_net.dir/prefix.cpp.o.d"
  "CMakeFiles/spal_net.dir/prefix6.cpp.o"
  "CMakeFiles/spal_net.dir/prefix6.cpp.o.d"
  "CMakeFiles/spal_net.dir/route_table.cpp.o"
  "CMakeFiles/spal_net.dir/route_table.cpp.o.d"
  "CMakeFiles/spal_net.dir/table_gen.cpp.o"
  "CMakeFiles/spal_net.dir/table_gen.cpp.o.d"
  "CMakeFiles/spal_net.dir/update_stream.cpp.o"
  "CMakeFiles/spal_net.dir/update_stream.cpp.o.d"
  "libspal_net.a"
  "libspal_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
