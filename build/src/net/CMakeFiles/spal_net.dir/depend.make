# Empty dependencies file for spal_net.
# This may be replaced when dependencies are built.
