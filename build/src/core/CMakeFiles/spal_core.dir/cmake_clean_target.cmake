file(REMOVE_RECURSE
  "libspal_core.a"
)
