file(REMOVE_RECURSE
  "CMakeFiles/spal_core.dir/router_sim.cpp.o"
  "CMakeFiles/spal_core.dir/router_sim.cpp.o.d"
  "libspal_core.a"
  "libspal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
