# Empty dependencies file for spal_core.
# This may be replaced when dependencies are built.
