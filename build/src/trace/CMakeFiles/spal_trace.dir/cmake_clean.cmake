file(REMOVE_RECURSE
  "CMakeFiles/spal_trace.dir/trace_gen.cpp.o"
  "CMakeFiles/spal_trace.dir/trace_gen.cpp.o.d"
  "libspal_trace.a"
  "libspal_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
