# Empty compiler generated dependencies file for spal_trace.
# This may be replaced when dependencies are built.
