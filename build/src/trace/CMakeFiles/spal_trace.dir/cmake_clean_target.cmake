file(REMOVE_RECURSE
  "libspal_trace.a"
)
