# Empty compiler generated dependencies file for spal_fabric.
# This may be replaced when dependencies are built.
