file(REMOVE_RECURSE
  "libspal_fabric.a"
)
