file(REMOVE_RECURSE
  "CMakeFiles/spal_fabric.dir/fabric.cpp.o"
  "CMakeFiles/spal_fabric.dir/fabric.cpp.o.d"
  "libspal_fabric.a"
  "libspal_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
