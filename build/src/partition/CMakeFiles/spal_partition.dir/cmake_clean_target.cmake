file(REMOVE_RECURSE
  "libspal_partition.a"
)
