file(REMOVE_RECURSE
  "CMakeFiles/spal_partition.dir/bit_selector.cpp.o"
  "CMakeFiles/spal_partition.dir/bit_selector.cpp.o.d"
  "CMakeFiles/spal_partition.dir/partition6.cpp.o"
  "CMakeFiles/spal_partition.dir/partition6.cpp.o.d"
  "CMakeFiles/spal_partition.dir/rot_partition.cpp.o"
  "CMakeFiles/spal_partition.dir/rot_partition.cpp.o.d"
  "libspal_partition.a"
  "libspal_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
