
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/bit_selector.cpp" "src/partition/CMakeFiles/spal_partition.dir/bit_selector.cpp.o" "gcc" "src/partition/CMakeFiles/spal_partition.dir/bit_selector.cpp.o.d"
  "/root/repo/src/partition/partition6.cpp" "src/partition/CMakeFiles/spal_partition.dir/partition6.cpp.o" "gcc" "src/partition/CMakeFiles/spal_partition.dir/partition6.cpp.o.d"
  "/root/repo/src/partition/rot_partition.cpp" "src/partition/CMakeFiles/spal_partition.dir/rot_partition.cpp.o" "gcc" "src/partition/CMakeFiles/spal_partition.dir/rot_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/spal_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
