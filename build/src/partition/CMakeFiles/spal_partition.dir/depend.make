# Empty dependencies file for spal_partition.
# This may be replaced when dependencies are built.
