file(REMOVE_RECURSE
  "libspal_trie.a"
)
