
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trie/binary_trie.cpp" "src/trie/CMakeFiles/spal_trie.dir/binary_trie.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/binary_trie.cpp.o.d"
  "/root/repo/src/trie/binary_trie6.cpp" "src/trie/CMakeFiles/spal_trie.dir/binary_trie6.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/binary_trie6.cpp.o.d"
  "/root/repo/src/trie/dp_trie.cpp" "src/trie/CMakeFiles/spal_trie.dir/dp_trie.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/dp_trie.cpp.o.d"
  "/root/repo/src/trie/dp_trie6.cpp" "src/trie/CMakeFiles/spal_trie.dir/dp_trie6.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/dp_trie6.cpp.o.d"
  "/root/repo/src/trie/gupta_trie.cpp" "src/trie/CMakeFiles/spal_trie.dir/gupta_trie.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/gupta_trie.cpp.o.d"
  "/root/repo/src/trie/lc_trie.cpp" "src/trie/CMakeFiles/spal_trie.dir/lc_trie.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/lc_trie.cpp.o.d"
  "/root/repo/src/trie/lc_trie6.cpp" "src/trie/CMakeFiles/spal_trie.dir/lc_trie6.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/lc_trie6.cpp.o.d"
  "/root/repo/src/trie/lpm.cpp" "src/trie/CMakeFiles/spal_trie.dir/lpm.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/lpm.cpp.o.d"
  "/root/repo/src/trie/lulea_trie.cpp" "src/trie/CMakeFiles/spal_trie.dir/lulea_trie.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/lulea_trie.cpp.o.d"
  "/root/repo/src/trie/stride_trie.cpp" "src/trie/CMakeFiles/spal_trie.dir/stride_trie.cpp.o" "gcc" "src/trie/CMakeFiles/spal_trie.dir/stride_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/spal_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
