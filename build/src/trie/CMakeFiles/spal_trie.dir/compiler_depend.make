# Empty compiler generated dependencies file for spal_trie.
# This may be replaced when dependencies are built.
