file(REMOVE_RECURSE
  "CMakeFiles/spal_trie.dir/binary_trie.cpp.o"
  "CMakeFiles/spal_trie.dir/binary_trie.cpp.o.d"
  "CMakeFiles/spal_trie.dir/binary_trie6.cpp.o"
  "CMakeFiles/spal_trie.dir/binary_trie6.cpp.o.d"
  "CMakeFiles/spal_trie.dir/dp_trie.cpp.o"
  "CMakeFiles/spal_trie.dir/dp_trie.cpp.o.d"
  "CMakeFiles/spal_trie.dir/dp_trie6.cpp.o"
  "CMakeFiles/spal_trie.dir/dp_trie6.cpp.o.d"
  "CMakeFiles/spal_trie.dir/gupta_trie.cpp.o"
  "CMakeFiles/spal_trie.dir/gupta_trie.cpp.o.d"
  "CMakeFiles/spal_trie.dir/lc_trie.cpp.o"
  "CMakeFiles/spal_trie.dir/lc_trie.cpp.o.d"
  "CMakeFiles/spal_trie.dir/lc_trie6.cpp.o"
  "CMakeFiles/spal_trie.dir/lc_trie6.cpp.o.d"
  "CMakeFiles/spal_trie.dir/lpm.cpp.o"
  "CMakeFiles/spal_trie.dir/lpm.cpp.o.d"
  "CMakeFiles/spal_trie.dir/lulea_trie.cpp.o"
  "CMakeFiles/spal_trie.dir/lulea_trie.cpp.o.d"
  "CMakeFiles/spal_trie.dir/stride_trie.cpp.o"
  "CMakeFiles/spal_trie.dir/stride_trie.cpp.o.d"
  "libspal_trie.a"
  "libspal_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spal_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
