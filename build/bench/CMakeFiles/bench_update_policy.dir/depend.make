# Empty dependencies file for bench_update_policy.
# This may be replaced when dependencies are built.
