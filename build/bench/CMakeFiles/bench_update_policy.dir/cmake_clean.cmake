file(REMOVE_RECURSE
  "CMakeFiles/bench_update_policy.dir/bench_update_policy.cpp.o"
  "CMakeFiles/bench_update_policy.dir/bench_update_policy.cpp.o.d"
  "bench_update_policy"
  "bench_update_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
