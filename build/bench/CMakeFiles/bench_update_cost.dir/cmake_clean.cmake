file(REMOVE_RECURSE
  "CMakeFiles/bench_update_cost.dir/bench_update_cost.cpp.o"
  "CMakeFiles/bench_update_cost.dir/bench_update_cost.cpp.o.d"
  "bench_update_cost"
  "bench_update_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
