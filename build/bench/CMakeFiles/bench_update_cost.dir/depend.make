# Empty dependencies file for bench_update_cost.
# This may be replaced when dependencies are built.
