file(REMOVE_RECURSE
  "CMakeFiles/bench_memaccess.dir/bench_memaccess.cpp.o"
  "CMakeFiles/bench_memaccess.dir/bench_memaccess.cpp.o.d"
  "bench_memaccess"
  "bench_memaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
