# Empty compiler generated dependencies file for bench_memaccess.
# This may be replaced when dependencies are built.
