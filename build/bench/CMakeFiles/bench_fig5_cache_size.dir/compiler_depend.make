# Empty compiler generated dependencies file for bench_fig5_cache_size.
# This may be replaced when dependencies are built.
