file(REMOVE_RECURSE
  "CMakeFiles/bench_worst_case.dir/bench_worst_case.cpp.o"
  "CMakeFiles/bench_worst_case.dir/bench_worst_case.cpp.o.d"
  "bench_worst_case"
  "bench_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
