# Empty dependencies file for bench_worst_case.
# This may be replaced when dependencies are built.
