file(REMOVE_RECURSE
  "CMakeFiles/bench_ipv6_extension.dir/bench_ipv6_extension.cpp.o"
  "CMakeFiles/bench_ipv6_extension.dir/bench_ipv6_extension.cpp.o.d"
  "bench_ipv6_extension"
  "bench_ipv6_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipv6_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
