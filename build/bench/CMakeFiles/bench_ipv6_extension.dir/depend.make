# Empty dependencies file for bench_ipv6_extension.
# This may be replaced when dependencies are built.
