# Empty compiler generated dependencies file for bench_rate_matrix.
# This may be replaced when dependencies are built.
