file(REMOVE_RECURSE
  "CMakeFiles/bench_rate_matrix.dir/bench_rate_matrix.cpp.o"
  "CMakeFiles/bench_rate_matrix.dir/bench_rate_matrix.cpp.o.d"
  "bench_rate_matrix"
  "bench_rate_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rate_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
