file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_scaling.dir/bench_fig6_scaling.cpp.o"
  "CMakeFiles/bench_fig6_scaling.dir/bench_fig6_scaling.cpp.o.d"
  "bench_fig6_scaling"
  "bench_fig6_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
