# Empty dependencies file for bench_fig4_mix.
# This may be replaced when dependencies are built.
