file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mix.dir/bench_fig4_mix.cpp.o"
  "CMakeFiles/bench_fig4_mix.dir/bench_fig4_mix.cpp.o.d"
  "bench_fig4_mix"
  "bench_fig4_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
