# Empty dependencies file for bench_fig3_sram.
# This may be replaced when dependencies are built.
