file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sram.dir/bench_fig3_sram.cpp.o"
  "CMakeFiles/bench_fig3_sram.dir/bench_fig3_sram.cpp.o.d"
  "bench_fig3_sram"
  "bench_fig3_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
