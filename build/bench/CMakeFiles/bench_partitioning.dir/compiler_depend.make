# Empty compiler generated dependencies file for bench_partitioning.
# This may be replaced when dependencies are built.
