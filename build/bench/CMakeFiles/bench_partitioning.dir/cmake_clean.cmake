file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioning.dir/bench_partitioning.cpp.o"
  "CMakeFiles/bench_partitioning.dir/bench_partitioning.cpp.o.d"
  "bench_partitioning"
  "bench_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
