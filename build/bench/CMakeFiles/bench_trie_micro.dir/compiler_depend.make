# Empty compiler generated dependencies file for bench_trie_micro.
# This may be replaced when dependencies are built.
