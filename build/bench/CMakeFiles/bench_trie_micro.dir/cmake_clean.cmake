file(REMOVE_RECURSE
  "CMakeFiles/bench_trie_micro.dir/bench_trie_micro.cpp.o"
  "CMakeFiles/bench_trie_micro.dir/bench_trie_micro.cpp.o.d"
  "bench_trie_micro"
  "bench_trie_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trie_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
