# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_fig4_mix "/root/repo/build/bench/bench_fig4_mix" "--packets=2000")
set_tests_properties(smoke_bench_fig4_mix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig5_cache_size "/root/repo/build/bench/bench_fig5_cache_size" "--packets=2000")
set_tests_properties(smoke_bench_fig5_cache_size PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig6_scaling "/root/repo/build/bench/bench_fig6_scaling" "--packets=2000")
set_tests_properties(smoke_bench_fig6_scaling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_throughput "/root/repo/build/bench/bench_throughput" "--packets=2000")
set_tests_properties(smoke_bench_throughput PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_rate_matrix "/root/repo/build/bench/bench_rate_matrix" "--packets=2000")
set_tests_properties(smoke_bench_rate_matrix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_baselines "/root/repo/build/bench/bench_baselines" "--packets=2000")
set_tests_properties(smoke_bench_baselines PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_update_policy "/root/repo/build/bench/bench_update_policy" "--packets=2000")
set_tests_properties(smoke_bench_update_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_ablation "/root/repo/build/bench/bench_ablation" "--packets=2000")
set_tests_properties(smoke_bench_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;32;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_worst_case "/root/repo/build/bench/bench_worst_case")
set_tests_properties(smoke_bench_worst_case PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;34;add_test;/root/repo/bench/CMakeLists.txt;0;")
