add_test([=[Smoke.SpalRouterResolvesAllPacketsCorrectly]=]  /root/repo/build/tests/test_smoke [==[--gtest_filter=Smoke.SpalRouterResolvesAllPacketsCorrectly]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.SpalRouterResolvesAllPacketsCorrectly]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_smoke_TESTS Smoke.SpalRouterResolvesAllPacketsCorrectly)
