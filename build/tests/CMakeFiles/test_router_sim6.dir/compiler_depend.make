# Empty compiler generated dependencies file for test_router_sim6.
# This may be replaced when dependencies are built.
