
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_router_sim6.cpp" "tests/CMakeFiles/test_router_sim6.dir/test_router_sim6.cpp.o" "gcc" "tests/CMakeFiles/test_router_sim6.dir/test_router_sim6.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/spal_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/spal_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/spal_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/spal_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/spal_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
