file(REMOVE_RECURSE
  "CMakeFiles/test_router_sim6.dir/test_router_sim6.cpp.o"
  "CMakeFiles/test_router_sim6.dir/test_router_sim6.cpp.o.d"
  "test_router_sim6"
  "test_router_sim6.pdb"
  "test_router_sim6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_sim6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
