file(REMOVE_RECURSE
  "CMakeFiles/test_stride_trie.dir/test_stride_trie.cpp.o"
  "CMakeFiles/test_stride_trie.dir/test_stride_trie.cpp.o.d"
  "test_stride_trie"
  "test_stride_trie.pdb"
  "test_stride_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stride_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
