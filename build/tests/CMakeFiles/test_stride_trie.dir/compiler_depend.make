# Empty compiler generated dependencies file for test_stride_trie.
# This may be replaced when dependencies are built.
