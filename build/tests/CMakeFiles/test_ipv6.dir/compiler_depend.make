# Empty compiler generated dependencies file for test_ipv6.
# This may be replaced when dependencies are built.
