file(REMOVE_RECURSE
  "CMakeFiles/test_ipv6.dir/test_ipv6.cpp.o"
  "CMakeFiles/test_ipv6.dir/test_ipv6.cpp.o.d"
  "test_ipv6"
  "test_ipv6.pdb"
  "test_ipv6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
