# Empty dependencies file for test_dp_trie6.
# This may be replaced when dependencies are built.
