file(REMOVE_RECURSE
  "CMakeFiles/test_dp_trie6.dir/test_dp_trie6.cpp.o"
  "CMakeFiles/test_dp_trie6.dir/test_dp_trie6.cpp.o.d"
  "test_dp_trie6"
  "test_dp_trie6.pdb"
  "test_dp_trie6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_trie6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
