file(REMOVE_RECURSE
  "CMakeFiles/test_update_stream.dir/test_update_stream.cpp.o"
  "CMakeFiles/test_update_stream.dir/test_update_stream.cpp.o.d"
  "test_update_stream"
  "test_update_stream.pdb"
  "test_update_stream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_update_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
