file(REMOVE_RECURSE
  "CMakeFiles/test_lr_cache6.dir/test_lr_cache6.cpp.o"
  "CMakeFiles/test_lr_cache6.dir/test_lr_cache6.cpp.o.d"
  "test_lr_cache6"
  "test_lr_cache6.pdb"
  "test_lr_cache6[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lr_cache6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
