# Empty dependencies file for test_lr_cache6.
# This may be replaced when dependencies are built.
