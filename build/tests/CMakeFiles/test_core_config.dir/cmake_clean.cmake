file(REMOVE_RECURSE
  "CMakeFiles/test_core_config.dir/test_core_config.cpp.o"
  "CMakeFiles/test_core_config.dir/test_core_config.cpp.o.d"
  "test_core_config"
  "test_core_config.pdb"
  "test_core_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
