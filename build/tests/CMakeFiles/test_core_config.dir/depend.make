# Empty dependencies file for test_core_config.
# This may be replaced when dependencies are built.
