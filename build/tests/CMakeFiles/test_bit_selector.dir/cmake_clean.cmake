file(REMOVE_RECURSE
  "CMakeFiles/test_bit_selector.dir/test_bit_selector.cpp.o"
  "CMakeFiles/test_bit_selector.dir/test_bit_selector.cpp.o.d"
  "test_bit_selector"
  "test_bit_selector.pdb"
  "test_bit_selector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
