# Empty dependencies file for test_bit_selector.
# This may be replaced when dependencies are built.
