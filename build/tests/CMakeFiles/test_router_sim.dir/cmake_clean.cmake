file(REMOVE_RECURSE
  "CMakeFiles/test_router_sim.dir/test_router_sim.cpp.o"
  "CMakeFiles/test_router_sim.dir/test_router_sim.cpp.o.d"
  "test_router_sim"
  "test_router_sim.pdb"
  "test_router_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
