# Empty compiler generated dependencies file for test_router_sim.
# This may be replaced when dependencies are built.
