file(REMOVE_RECURSE
  "CMakeFiles/test_lr_cache.dir/test_lr_cache.cpp.o"
  "CMakeFiles/test_lr_cache.dir/test_lr_cache.cpp.o.d"
  "test_lr_cache"
  "test_lr_cache.pdb"
  "test_lr_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
