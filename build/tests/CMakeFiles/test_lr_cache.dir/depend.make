# Empty dependencies file for test_lr_cache.
# This may be replaced when dependencies are built.
