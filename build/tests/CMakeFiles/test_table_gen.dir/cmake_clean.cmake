file(REMOVE_RECURSE
  "CMakeFiles/test_table_gen.dir/test_table_gen.cpp.o"
  "CMakeFiles/test_table_gen.dir/test_table_gen.cpp.o.d"
  "test_table_gen"
  "test_table_gen.pdb"
  "test_table_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
