# Empty dependencies file for test_table_gen.
# This may be replaced when dependencies are built.
