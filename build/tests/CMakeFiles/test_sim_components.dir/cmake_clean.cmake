file(REMOVE_RECURSE
  "CMakeFiles/test_sim_components.dir/test_sim_components.cpp.o"
  "CMakeFiles/test_sim_components.dir/test_sim_components.cpp.o.d"
  "test_sim_components"
  "test_sim_components.pdb"
  "test_sim_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
