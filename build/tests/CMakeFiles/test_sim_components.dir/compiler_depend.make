# Empty compiler generated dependencies file for test_sim_components.
# This may be replaced when dependencies are built.
