file(REMOVE_RECURSE
  "CMakeFiles/test_lulea_trie.dir/test_lulea_trie.cpp.o"
  "CMakeFiles/test_lulea_trie.dir/test_lulea_trie.cpp.o.d"
  "test_lulea_trie"
  "test_lulea_trie.pdb"
  "test_lulea_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lulea_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
