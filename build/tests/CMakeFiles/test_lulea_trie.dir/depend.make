# Empty dependencies file for test_lulea_trie.
# This may be replaced when dependencies are built.
