file(REMOVE_RECURSE
  "CMakeFiles/test_binary_trie.dir/test_binary_trie.cpp.o"
  "CMakeFiles/test_binary_trie.dir/test_binary_trie.cpp.o.d"
  "test_binary_trie"
  "test_binary_trie.pdb"
  "test_binary_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binary_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
