# Empty dependencies file for test_binary_trie.
# This may be replaced when dependencies are built.
