# Empty compiler generated dependencies file for test_rot_partition.
# This may be replaced when dependencies are built.
