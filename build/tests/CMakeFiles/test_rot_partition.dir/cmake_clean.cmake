file(REMOVE_RECURSE
  "CMakeFiles/test_rot_partition.dir/test_rot_partition.cpp.o"
  "CMakeFiles/test_rot_partition.dir/test_rot_partition.cpp.o.d"
  "test_rot_partition"
  "test_rot_partition.pdb"
  "test_rot_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rot_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
