file(REMOVE_RECURSE
  "CMakeFiles/test_trace_gen.dir/test_trace_gen.cpp.o"
  "CMakeFiles/test_trace_gen.dir/test_trace_gen.cpp.o.d"
  "test_trace_gen"
  "test_trace_gen.pdb"
  "test_trace_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
