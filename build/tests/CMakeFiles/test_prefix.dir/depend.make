# Empty dependencies file for test_prefix.
# This may be replaced when dependencies are built.
