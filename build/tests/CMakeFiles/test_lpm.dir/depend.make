# Empty dependencies file for test_lpm.
# This may be replaced when dependencies are built.
