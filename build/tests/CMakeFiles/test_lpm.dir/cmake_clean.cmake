file(REMOVE_RECURSE
  "CMakeFiles/test_lpm.dir/test_lpm.cpp.o"
  "CMakeFiles/test_lpm.dir/test_lpm.cpp.o.d"
  "test_lpm"
  "test_lpm.pdb"
  "test_lpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
