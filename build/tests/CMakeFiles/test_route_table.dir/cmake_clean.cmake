file(REMOVE_RECURSE
  "CMakeFiles/test_route_table.dir/test_route_table.cpp.o"
  "CMakeFiles/test_route_table.dir/test_route_table.cpp.o.d"
  "test_route_table"
  "test_route_table.pdb"
  "test_route_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
