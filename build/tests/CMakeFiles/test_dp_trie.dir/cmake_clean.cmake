file(REMOVE_RECURSE
  "CMakeFiles/test_dp_trie.dir/test_dp_trie.cpp.o"
  "CMakeFiles/test_dp_trie.dir/test_dp_trie.cpp.o.d"
  "test_dp_trie"
  "test_dp_trie.pdb"
  "test_dp_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dp_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
