# Empty dependencies file for test_dp_trie.
# This may be replaced when dependencies are built.
