# Empty compiler generated dependencies file for test_tries.
# This may be replaced when dependencies are built.
