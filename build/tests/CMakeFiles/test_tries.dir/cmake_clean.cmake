file(REMOVE_RECURSE
  "CMakeFiles/test_tries.dir/test_tries.cpp.o"
  "CMakeFiles/test_tries.dir/test_tries.cpp.o.d"
  "test_tries"
  "test_tries.pdb"
  "test_tries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
