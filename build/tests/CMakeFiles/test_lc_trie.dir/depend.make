# Empty dependencies file for test_lc_trie.
# This may be replaced when dependencies are built.
