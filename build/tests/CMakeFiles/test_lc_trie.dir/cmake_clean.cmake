file(REMOVE_RECURSE
  "CMakeFiles/test_lc_trie.dir/test_lc_trie.cpp.o"
  "CMakeFiles/test_lc_trie.dir/test_lc_trie.cpp.o.d"
  "test_lc_trie"
  "test_lc_trie.pdb"
  "test_lc_trie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lc_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
