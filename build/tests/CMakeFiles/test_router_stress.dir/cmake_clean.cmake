file(REMOVE_RECURSE
  "CMakeFiles/test_router_stress.dir/test_router_stress.cpp.o"
  "CMakeFiles/test_router_stress.dir/test_router_stress.cpp.o.d"
  "test_router_stress"
  "test_router_stress.pdb"
  "test_router_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
