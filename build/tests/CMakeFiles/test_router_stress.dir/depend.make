# Empty dependencies file for test_router_stress.
# This may be replaced when dependencies are built.
