# Empty compiler generated dependencies file for test_ip_addr.
# This may be replaced when dependencies are built.
