file(REMOVE_RECURSE
  "CMakeFiles/test_ip_addr.dir/test_ip_addr.cpp.o"
  "CMakeFiles/test_ip_addr.dir/test_ip_addr.cpp.o.d"
  "test_ip_addr"
  "test_ip_addr.pdb"
  "test_ip_addr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ip_addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
