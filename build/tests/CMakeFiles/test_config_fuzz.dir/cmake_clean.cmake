file(REMOVE_RECURSE
  "CMakeFiles/test_config_fuzz.dir/test_config_fuzz.cpp.o"
  "CMakeFiles/test_config_fuzz.dir/test_config_fuzz.cpp.o.d"
  "test_config_fuzz"
  "test_config_fuzz.pdb"
  "test_config_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
