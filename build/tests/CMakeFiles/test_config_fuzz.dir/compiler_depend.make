# Empty compiler generated dependencies file for test_config_fuzz.
# This may be replaced when dependencies are built.
