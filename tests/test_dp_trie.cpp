#include "trie/dp_trie.h"

#include <gtest/gtest.h>

#include "net/table_gen.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using trie::DpTrie;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(DpTrie, NodeCountBoundedByPrefixStructure) {
  // Path compression keeps only prefix nodes and branch points: at most
  // 2n+1 nodes for n prefixes (root + n prefixes + n-1 branch points).
  net::TableGenConfig config;
  config.size = 10'000;
  config.seed = 31;
  const RouteTable table = net::generate_table(config);
  const DpTrie trie(table);
  EXPECT_LE(trie.node_count(), 2 * table.size() + 1);
  EXPECT_GE(trie.node_count(), table.size());
}

TEST(DpTrie, StorageModelIs21BytesPerNode) {
  net::TableGenConfig config;
  config.size = 1000;
  config.seed = 31;
  const DpTrie trie(net::generate_table(config));
  EXPECT_EQ(trie.storage_bytes(), trie.node_count() * 21);
}

TEST(DpTrie, SkippedBitMismatchFallsBackToAncestor) {
  // 10.0.0.0/8 with a lone deep descendant; an address diverging inside the
  // compressed path must match the /8, not the descendant.
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.255.255.0/24"), 2);
  const DpTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0AFFFF01u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A123456u}), 1u);  // diverges mid-path
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0B000000u}), net::kNoRoute);
}

TEST(DpTrie, AccessCountsSmallerThanUncompressedDepth) {
  net::TableGenConfig config;
  config.size = 10'000;
  config.seed = 32;
  const RouteTable table = net::generate_table(config);
  const DpTrie trie(table);
  const double mean = trie::mean_accesses_per_lookup(trie, table, 5'000, 1);
  // The SPAL paper measures ~16 accesses per lookup for the DP trie; the
  // compressed walk must land well under the 25+ of a plain binary trie.
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 24.0);
}

TEST(DpTrie, RootPrefixHandled) {
  RouteTable table;
  table.add(p("0.0.0.0/0"), 9);
  table.add(p("128.0.0.0/1"), 1);
  const DpTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x00000001u}), 9u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x80000001u}), 1u);
}

TEST(DpTrie, NameIsDp) {
  EXPECT_EQ(DpTrie(RouteTable{}).name(), "dp");
}

}  // namespace
