#include "trie/dp_trie.h"

#include <gtest/gtest.h>

#include <random>

#include "net/table_gen.h"
#include "net/update_stream.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using trie::DpTrie;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(DpTrie, NodeCountBoundedByPrefixStructure) {
  // Path compression keeps only prefix nodes and branch points: at most
  // 2n+1 nodes for n prefixes (root + n prefixes + n-1 branch points).
  net::TableGenConfig config;
  config.size = 10'000;
  config.seed = 31;
  const RouteTable table = net::generate_table(config);
  const DpTrie trie(table);
  EXPECT_LE(trie.node_count(), 2 * table.size() + 1);
  EXPECT_GE(trie.node_count(), table.size());
}

TEST(DpTrie, StorageModelIs21BytesPerNode) {
  net::TableGenConfig config;
  config.size = 1000;
  config.seed = 31;
  const DpTrie trie(net::generate_table(config));
  EXPECT_EQ(trie.storage_bytes(), trie.node_count() * 21);
}

TEST(DpTrie, SkippedBitMismatchFallsBackToAncestor) {
  // 10.0.0.0/8 with a lone deep descendant; an address diverging inside the
  // compressed path must match the /8, not the descendant.
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.255.255.0/24"), 2);
  const DpTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0AFFFF01u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A123456u}), 1u);  // diverges mid-path
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0B000000u}), net::kNoRoute);
}

TEST(DpTrie, AccessCountsSmallerThanUncompressedDepth) {
  net::TableGenConfig config;
  config.size = 10'000;
  config.seed = 32;
  const RouteTable table = net::generate_table(config);
  const DpTrie trie(table);
  const double mean = trie::mean_accesses_per_lookup(trie, table, 5'000, 1);
  // The SPAL paper measures ~16 accesses per lookup for the DP trie; the
  // compressed walk must land well under the 25+ of a plain binary trie.
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 24.0);
}

TEST(DpTrie, RootPrefixHandled) {
  RouteTable table;
  table.add(p("0.0.0.0/0"), 9);
  table.add(p("128.0.0.0/1"), 1);
  const DpTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x00000001u}), 9u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x80000001u}), 1u);
}

TEST(DpTrie, NameIsDp) {
  EXPECT_EQ(DpTrie(RouteTable{}).name(), "dp");
}

TEST(DpTrie, SupportsIncrementalUpdate) {
  EXPECT_TRUE(DpTrie(RouteTable{}).supports_incremental_update());
}

TEST(DpTrie, InsertThenLookup) {
  DpTrie trie((RouteTable{}));
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.1.0.0/16"), 2);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010001u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A020001u}), 1u);
  // Re-insertion replaces the hop in place.
  trie.insert(p("10.1.0.0/16"), 5);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010001u}), 5u);
}

TEST(DpTrie, RemoveFallsBackToAncestor) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.1.0.0/16"), 2);
  DpTrie trie(table);
  EXPECT_TRUE(trie.remove(p("10.1.0.0/16")));
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010001u}), 1u);
  EXPECT_FALSE(trie.remove(p("10.1.0.0/16")));
  // Removing a prefix that only exists as an interior path fails too.
  EXPECT_FALSE(trie.remove(p("10.0.0.0/12")));
}

TEST(DpTrie, SpliceReusesFreedNodes) {
  // Insert/remove churn must recycle spliced nodes through the free list:
  // the node count after a full cycle returns to the baseline, and the
  // arena does not grow on the second cycle.
  DpTrie trie((RouteTable{}));
  const std::size_t baseline = trie.node_count();
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      trie.insert(Prefix(Ipv4Addr{i << 8}, 24), i + 1);
    }
    for (std::uint32_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(trie.remove(Prefix(Ipv4Addr{i << 8}, 24)));
    }
    EXPECT_EQ(trie.node_count(), baseline);
  }
  const std::size_t bytes_after = trie.storage_bytes();
  EXPECT_EQ(bytes_after, baseline * 21);
}

TEST(DpTrie, IncrementalChurnMatchesRebuild) {
  net::TableGenConfig config;
  config.size = 2'000;
  config.seed = 33;
  net::RouteTable working = net::generate_table(config);
  DpTrie trie(working);
  net::UpdateStreamConfig stream_config;
  stream_config.count = 3'000;
  stream_config.seed = 34;
  std::mt19937_64 rng(35);
  for (const net::TableUpdate& update :
       net::generate_update_stream(working, stream_config)) {
    net::apply_update(working, update);
    if (update.kind == net::UpdateKind::kWithdraw) {
      ASSERT_TRUE(trie.remove(update.prefix));
    } else {
      trie.insert(update.prefix, update.next_hop);
    }
  }
  const DpTrie rebuilt(working);
  EXPECT_EQ(trie.node_count(), rebuilt.node_count());
  for (int i = 0; i < 3'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(trie.lookup(addr), rebuilt.lookup(addr)) << addr.to_string();
  }
}

}  // namespace
