#include "cache/lr_cache.h"

#include <gtest/gtest.h>

namespace {

using namespace spal;
using cache::LrCache;
using cache::LrCacheConfig;
using cache::Origin;
using cache::ProbeState;
using cache::Replacement;
using net::Ipv4Addr;

LrCacheConfig small_config() {
  LrCacheConfig config;
  config.blocks = 16;  // 4 sets x 4 ways
  config.associativity = 4;
  config.victim_blocks = 0;
  return config;
}

/// Addresses mapping to a chosen set (set index = low bits of the address).
Ipv4Addr addr_in_set(std::uint32_t set, std::uint32_t tag, std::size_t sets = 4) {
  return Ipv4Addr{static_cast<std::uint32_t>(tag * sets) + set};
}

TEST(LrCache, RejectsInvalidGeometry) {
  LrCacheConfig config = small_config();
  config.blocks = 10;  // not a multiple of 4
  EXPECT_THROW(LrCache{config}, std::invalid_argument);
  config = small_config();
  config.blocks = 12;  // 3 sets: not a power of two
  EXPECT_THROW(LrCache{config}, std::invalid_argument);
  config = small_config();
  config.associativity = 0;
  EXPECT_THROW(LrCache{config}, std::invalid_argument);
  config = small_config();
  config.remote_fraction = 1.5;
  EXPECT_THROW(LrCache{config}, std::invalid_argument);
}

TEST(LrCache, MissThenInsertThenHit) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  EXPECT_EQ(cache.probe(a, 0).state, ProbeState::kMiss);
  cache.insert(a, 42, Origin::kLocal, 1);
  const auto result = cache.probe(a, 2);
  EXPECT_EQ(result.state, ProbeState::kHit);
  EXPECT_EQ(result.next_hop, 42u);
}

TEST(LrCache, ReserveMakesWaitingState) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  EXPECT_TRUE(cache.reserve(a, Origin::kLocal, 0));
  EXPECT_EQ(cache.probe(a, 1).state, ProbeState::kWaiting);
  EXPECT_EQ(cache.stats().waiting_hits, 1u);
}

TEST(LrCache, FillCompletesWaitingBlock) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  ASSERT_TRUE(cache.reserve(a, Origin::kRemote, 0));
  EXPECT_TRUE(cache.fill(a, 7, 2));
  const auto result = cache.probe(a, 3);
  EXPECT_EQ(result.state, ProbeState::kHit);
  EXPECT_EQ(result.next_hop, 7u);
}

TEST(LrCache, FillWithoutReservationIsOrphan) {
  LrCache cache(small_config());
  EXPECT_FALSE(cache.fill(addr_in_set(0, 1), 7, 0));
  EXPECT_EQ(cache.stats().orphan_fills, 1u);
}

TEST(LrCache, FillAfterFlushIsOrphan) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  ASSERT_TRUE(cache.reserve(a, Origin::kLocal, 0));
  cache.flush();
  EXPECT_FALSE(cache.fill(a, 7, 1));
  EXPECT_EQ(cache.stats().orphan_fills, 1u);
}

TEST(LrCache, FlushInvalidatesEverything) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  cache.insert(a, 42, Origin::kLocal, 0);
  cache.flush();
  EXPECT_EQ(cache.probe(a, 1).state, ProbeState::kMiss);
  EXPECT_EQ(cache.stats().flushes, 1u);
}

TEST(LrCache, LruEvictsLeastRecentlyUsed) {
  LrCacheConfig config = small_config();
  config.remote_fraction = 0.0;  // all four ways belong to LOC results
  LrCache cache(config);
  // Fill set 0 with four LOC blocks, touching them at distinct times.
  for (std::uint32_t tag = 1; tag <= 4; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  // Re-touch tag 1 so tag 2 becomes LRU.
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 10).state, ProbeState::kHit);
  cache.insert(addr_in_set(0, 5), 5, Origin::kLocal, 11);
  EXPECT_EQ(cache.probe(addr_in_set(0, 2), 12).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 13).state, ProbeState::kHit);
}

TEST(LrCache, FifoIgnoresRecency) {
  LrCacheConfig config = small_config();
  config.replacement = Replacement::kFifo;
  config.remote_fraction = 0.0;
  LrCache cache(config);
  for (std::uint32_t tag = 1; tag <= 4; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  // Touching tag 1 does not save it under FIFO.
  (void)cache.probe(addr_in_set(0, 1), 10);
  cache.insert(addr_in_set(0, 5), 5, Origin::kLocal, 11);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 12).state, ProbeState::kMiss);
}

TEST(LrCache, MixRuleRemoteQuotaOfOneBlock) {
  // γ = 25% of a 4-way set -> exactly one block per set devoted to REM
  // results (the paper's small-cache recommendation). A second REM insert
  // replaces the first; LOC blocks are untouched.
  LrCacheConfig config = small_config();
  config.remote_fraction = 0.25;
  LrCache cache(config);
  EXPECT_EQ(cache.ways(Origin::kRemote), 1u);
  EXPECT_EQ(cache.ways(Origin::kLocal), 3u);
  cache.insert(addr_in_set(0, 1), 1, Origin::kLocal, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kLocal, 2);
  cache.insert(addr_in_set(0, 3), 3, Origin::kRemote, 3);
  cache.insert(addr_in_set(0, 4), 4, Origin::kRemote, 4);
  EXPECT_EQ(cache.probe(addr_in_set(0, 3), 6).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 7).state, ProbeState::kHit);
  EXPECT_EQ(cache.probe(addr_in_set(0, 2), 8).state, ProbeState::kHit);
  EXPECT_EQ(cache.probe(addr_in_set(0, 4), 9).state, ProbeState::kHit);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 1u);
}

TEST(LrCache, MixRuleLocalQuotaOfOneBlock) {
  // γ = 75% -> only 1 way for LOC: a second LOC insert replaces the first.
  LrCacheConfig config = small_config();
  config.remote_fraction = 0.75;
  LrCache cache(config);
  cache.insert(addr_in_set(0, 1), 1, Origin::kLocal, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kLocal, 2);
  cache.insert(addr_in_set(0, 4), 4, Origin::kRemote, 4);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 6).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(addr_in_set(0, 2), 7).state, ProbeState::kHit);
  EXPECT_EQ(cache.probe(addr_in_set(0, 4), 8).state, ProbeState::kHit);
}

TEST(LrCache, QuotaReplacementIsLruWithinOrigin) {
  // γ = 50%: two ways per origin. The third LOC insert replaces the
  // least-recently-used LOC block and leaves REM blocks alone.
  LrCache cache(small_config());
  cache.insert(addr_in_set(0, 1), 1, Origin::kLocal, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kRemote, 2);
  cache.insert(addr_in_set(0, 3), 3, Origin::kLocal, 3);
  cache.insert(addr_in_set(0, 4), 4, Origin::kRemote, 4);
  cache.insert(addr_in_set(0, 5), 5, Origin::kLocal, 5);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 6).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(addr_in_set(0, 2), 7).state, ProbeState::kHit);
  EXPECT_EQ(cache.probe(addr_in_set(0, 3), 8).state, ProbeState::kHit);
  EXPECT_EQ(cache.probe(addr_in_set(0, 4), 9).state, ProbeState::kHit);
}

TEST(LrCache, IdleWaysAreUsableByEitherOrigin) {
  // Below-quota insertions take invalid blocks first, so an all-LOC burst
  // can still use its two ways while the REM ways sit idle.
  LrCache cache(small_config());
  cache.insert(addr_in_set(0, 1), 1, Origin::kLocal, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kLocal, 2);
  EXPECT_EQ(cache.count_origin(Origin::kLocal), 2u);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 3).state, ProbeState::kHit);
  EXPECT_EQ(cache.probe(addr_in_set(0, 2), 4).state, ProbeState::kHit);
}

TEST(LrCache, WaitingBlocksArePinned) {
  LrCache cache(small_config());  // γ = 50%: 2 LOC + 2 REM ways
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 1), Origin::kLocal, 1));
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 2), Origin::kLocal, 2));
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 3), Origin::kRemote, 3));
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 4), Origin::kRemote, 4));
  // Both quotas are now entirely W=1: further reservations must fail...
  EXPECT_FALSE(cache.reserve(addr_in_set(0, 5), Origin::kLocal, 5));
  EXPECT_FALSE(cache.reserve(addr_in_set(0, 6), Origin::kRemote, 6));
  EXPECT_EQ(cache.stats().failed_reservations, 2u);
  // ...and all four waiting blocks must still be present.
  for (std::uint32_t tag = 1; tag <= 4; ++tag) {
    EXPECT_EQ(cache.probe(addr_in_set(0, tag), 7).state, ProbeState::kWaiting);
  }
}

TEST(LrCache, CancelWaitingReleasesQuota) {
  // The router's timeout path reclaims a W=1 block whose reply was lost so
  // the origin's γ quota is not pinned for the rest of the run.
  LrCache cache(small_config());  // γ = 50%: 2 REM ways
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 1), Origin::kRemote, 1));
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 2), Origin::kRemote, 2));
  EXPECT_FALSE(cache.reserve(addr_in_set(0, 3), Origin::kRemote, 3));

  EXPECT_TRUE(cache.cancel_waiting(addr_in_set(0, 1)));
  EXPECT_EQ(cache.stats().cancelled_reservations, 1u);
  // The cancelled block is gone (a later reply would be an orphan fill)...
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 4).state, ProbeState::kMiss);
  EXPECT_FALSE(cache.fill(addr_in_set(0, 1), 7, 5));
  EXPECT_EQ(cache.stats().orphan_fills, 1u);
  // ...and its way is reservable again.
  EXPECT_TRUE(cache.reserve(addr_in_set(0, 3), Origin::kRemote, 6));
}

TEST(LrCache, CancelWaitingNeverTouchesCompletedBlocks) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  EXPECT_FALSE(cache.cancel_waiting(a));  // never reserved
  ASSERT_TRUE(cache.reserve(a, Origin::kRemote, 0));
  ASSERT_TRUE(cache.fill(a, 9, 1));
  EXPECT_FALSE(cache.cancel_waiting(a));  // completed: must survive
  EXPECT_EQ(cache.probe(a, 2).next_hop, 9u);
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 2), Origin::kRemote, 3));
  cache.flush();
  EXPECT_FALSE(cache.cancel_waiting(addr_in_set(0, 2)));  // flushed away
  EXPECT_EQ(cache.stats().cancelled_reservations, 0u);
}

TEST(LrCache, VictimCacheCatchesConflictEvictions) {
  LrCacheConfig config = small_config();
  config.victim_blocks = 8;
  LrCache cache(config);
  for (std::uint32_t tag = 1; tag <= 5; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  // Tag 1 was evicted from the set but lives in the victim cache.
  const auto result = cache.probe(addr_in_set(0, 1), 10);
  EXPECT_EQ(result.state, ProbeState::kHit);
  EXPECT_EQ(result.next_hop, 1u);
  EXPECT_EQ(cache.stats().victim_hits, 1u);
}

TEST(LrCache, VictimHitPromotesBackToSet) {
  LrCacheConfig config = small_config();
  config.victim_blocks = 8;
  LrCache cache(config);
  for (std::uint32_t tag = 1; tag <= 5; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  (void)cache.probe(addr_in_set(0, 1), 10);  // victim hit, promotes
  const auto again = cache.probe(addr_in_set(0, 1), 11);
  EXPECT_EQ(again.state, ProbeState::kHit);
  EXPECT_EQ(cache.stats().victim_hits, 1u);  // second hit from the set
}

TEST(LrCache, VictimPromotionDemotesQuotaLruBackToVictim) {
  // Success path: promoting a victim-cache hit evicts the quota's LRU block
  // into the victim cache (a swap), so neither result is lost.
  LrCacheConfig config = small_config();  // γ = 50%: 2 REM ways
  config.victim_blocks = 8;
  LrCache cache(config);
  cache.insert(addr_in_set(0, 1), 1, Origin::kRemote, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kRemote, 2);
  cache.insert(addr_in_set(0, 3), 3, Origin::kRemote, 3);  // evicts tag 1

  const auto hit = cache.probe(addr_in_set(0, 1), 10);  // victim hit, promotes
  EXPECT_EQ(hit.state, ProbeState::kHit);
  EXPECT_EQ(hit.next_hop, 1u);
  EXPECT_EQ(cache.stats().victim_hits, 1u);
  EXPECT_EQ(cache.stats().failed_promotions, 0u);
  // Tag 1 now hits in the set (victim_hits stays 1)...
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 11).state, ProbeState::kHit);
  EXPECT_EQ(cache.stats().victim_hits, 1u);
  // ...and tag 2 (the demoted LRU) survives in the victim cache.
  const auto demoted = cache.probe(addr_in_set(0, 2), 12);
  EXPECT_EQ(demoted.state, ProbeState::kHit);
  EXPECT_EQ(demoted.next_hop, 2u);
}

TEST(LrCache, DeclinedVictimPromotionKeepsTheEntry) {
  // Regression: when every way of the victim's origin quota is a pinned
  // W=1 block, promotion must be declined — and the victim-cache entry must
  // survive. The old code deleted the entry first and lost the result, so a
  // re-probe of the same address missed.
  LrCacheConfig config = small_config();  // γ = 50%: 2 REM ways
  config.victim_blocks = 8;
  LrCache cache(config);
  cache.insert(addr_in_set(0, 1), 1, Origin::kRemote, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kRemote, 2);
  cache.insert(addr_in_set(0, 3), 3, Origin::kRemote, 3);  // tag 1 -> victim
  // Pin both REM ways with in-flight reservations (evicting tags 2 and 3
  // to the victim cache on the way).
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 4), Origin::kRemote, 4));
  ASSERT_TRUE(cache.reserve(addr_in_set(0, 5), Origin::kRemote, 5));

  const std::uint64_t bypasses_before = cache.stats().quota_bypasses;
  const auto hit = cache.probe(addr_in_set(0, 1), 10);
  EXPECT_EQ(hit.state, ProbeState::kHit);
  EXPECT_EQ(hit.next_hop, 1u);
  EXPECT_EQ(cache.stats().failed_promotions, 1u);
  // The declined promotion probes the set but must not be billed as a
  // quota bypass — that counter tracks insert/reserve placement decisions.
  EXPECT_EQ(cache.stats().quota_bypasses, bypasses_before);

  // The entry stayed in the victim cache: probing again still hits.
  const auto again = cache.probe(addr_in_set(0, 1), 11);
  EXPECT_EQ(again.state, ProbeState::kHit);
  EXPECT_EQ(again.next_hop, 1u);
  EXPECT_EQ(cache.stats().victim_hits, 2u);
  EXPECT_EQ(cache.stats().failed_promotions, 2u);
}

TEST(LrCache, WithoutVictimCacheConflictsAreLost) {
  LrCache cache(small_config());  // victim_blocks = 0
  for (std::uint32_t tag = 1; tag <= 5; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 10).state, ProbeState::kMiss);
}

TEST(LrCache, InsertUpdatesExistingBlockInPlace) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(1, 1);
  cache.insert(a, 1, Origin::kLocal, 0);
  cache.insert(a, 9, Origin::kRemote, 1);
  const auto result = cache.probe(a, 2);
  EXPECT_EQ(result.next_hop, 9u);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 1u);
  EXPECT_EQ(cache.count_origin(Origin::kLocal), 0u);
}

TEST(LrCache, SetsAreIndependent) {
  LrCacheConfig config = small_config();
  config.remote_fraction = 0.0;  // four LOC ways per set
  LrCache cache(config);
  for (std::uint32_t set = 0; set < 4; ++set) {
    for (std::uint32_t tag = 1; tag <= 4; ++tag) {
      cache.insert(addr_in_set(set, tag), set, Origin::kLocal, tag);
    }
  }
  for (std::uint32_t set = 0; set < 4; ++set) {
    for (std::uint32_t tag = 1; tag <= 4; ++tag) {
      EXPECT_EQ(cache.probe(addr_in_set(set, tag), 10).state, ProbeState::kHit);
    }
  }
}

TEST(LrCache, StatsAccounting) {
  LrCache cache(small_config());
  const Ipv4Addr a = addr_in_set(0, 1);
  (void)cache.probe(a, 0);               // miss
  ASSERT_TRUE(cache.reserve(a, Origin::kLocal, 0));
  (void)cache.probe(a, 1);               // waiting hit
  cache.fill(a, 5, 2);
  (void)cache.probe(a, 3);               // hit
  const auto& stats = cache.stats();
  EXPECT_EQ(stats.probes, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.waiting_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.reservations, 1u);
  EXPECT_EQ(stats.fills, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);
}

TEST(LrCache, ResetClearsContentAndStats) {
  LrCache cache(small_config());
  cache.insert(addr_in_set(0, 1), 1, Origin::kLocal, 0);
  (void)cache.probe(addr_in_set(0, 1), 1);
  cache.reset();
  EXPECT_EQ(cache.stats().probes, 0u);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 2).state, ProbeState::kMiss);
}

TEST(LrCache, RandomPolicyStaysWithinSet) {
  LrCacheConfig config = small_config();
  config.replacement = Replacement::kRandom;
  config.remote_fraction = 0.0;  // four LOC ways per set
  LrCache cache(config);
  for (std::uint32_t tag = 1; tag <= 12; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  // Exactly 4 of the 12 survive (all in set 0), and other sets are empty.
  std::size_t present = 0;
  for (std::uint32_t tag = 1; tag <= 12; ++tag) {
    if (cache.probe(addr_in_set(0, tag), 100).state == ProbeState::kHit) ++present;
  }
  EXPECT_EQ(present, 4u);
}

TEST(LrCache, CountOriginTracksMix) {
  LrCache cache(small_config());
  cache.insert(addr_in_set(0, 1), 1, Origin::kLocal, 0);
  cache.insert(addr_in_set(1, 1), 2, Origin::kRemote, 0);
  cache.insert(addr_in_set(2, 1), 3, Origin::kRemote, 0);
  EXPECT_EQ(cache.count_origin(Origin::kLocal), 1u);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 2u);
}

TEST(LrCache, GammaZeroKeepsNoRemoteUnderPressure) {
  // γ = 0: any present REM block is immediately the eviction candidate.
  LrCacheConfig config = small_config();
  config.remote_fraction = 0.0;
  LrCache cache(config);
  cache.insert(addr_in_set(0, 1), 1, Origin::kRemote, 1);
  cache.insert(addr_in_set(0, 2), 2, Origin::kLocal, 2);
  cache.insert(addr_in_set(0, 3), 3, Origin::kLocal, 3);
  cache.insert(addr_in_set(0, 4), 4, Origin::kLocal, 4);
  cache.insert(addr_in_set(0, 5), 5, Origin::kLocal, 5);
  EXPECT_EQ(cache.probe(addr_in_set(0, 1), 6).state, ProbeState::kMiss);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 0u);
}

// --- Selective invalidation (live route updates) -------------------------

TEST(LrCache, InvalidateMatchingDropsOnlyCoveredBlocks) {
  LrCache cache(small_config());
  const Ipv4Addr covered = addr_in_set(0, 1);    // 4 -> inside 0.0.0.0/24
  const Ipv4Addr outside{0x0A000000u + 0};       // same set, other /24
  cache.insert(covered, 1, Origin::kLocal, 0);
  cache.insert(outside, 2, Origin::kRemote, 1);
  const auto prefix = *net::Prefix::parse("0.0.0.0/24");
  EXPECT_EQ(cache.invalidate_matching(prefix), 1u);
  EXPECT_EQ(cache.stats().invalidated_blocks, 1u);
  EXPECT_EQ(cache.probe(covered, 2).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(outside, 3).state, ProbeState::kHit);
}

TEST(LrCache, InvalidateMatchingReleasesQuota) {
  // γ = 0.5 on 4 ways -> 2 REM ways per set. Fill the quota, invalidate the
  // covering prefix, and the freed ways must accept new REM blocks without
  // evicting anyone (the eviction counter stays put).
  LrCache cache(small_config());
  cache.insert(addr_in_set(0, 1), 1, Origin::kRemote, 0);
  cache.insert(addr_in_set(0, 2), 2, Origin::kRemote, 1);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 2u);
  EXPECT_EQ(cache.invalidate_matching(*net::Prefix::parse("0.0.0.0/24")), 2u);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 0u);
  const std::uint64_t evictions = cache.stats().evictions;
  EXPECT_TRUE(cache.reserve(addr_in_set(0, 3), Origin::kRemote, 2));
  EXPECT_TRUE(cache.fill(addr_in_set(0, 3), 3, 3));
  EXPECT_TRUE(cache.reserve(addr_in_set(0, 4), Origin::kRemote, 4));
  EXPECT_EQ(cache.stats().evictions, evictions);
  EXPECT_EQ(cache.stats().failed_reservations, 0u);
}

TEST(LrCache, InvalidateMatchingLeavesWaitingBlocksForTheirFill) {
  // W=1 blocks must survive selective invalidation: their in-flight reply
  // either carries post-update data or is dropped by a later invalidation,
  // and destroying the block here would orphan the fill and leak the
  // waiting packet list.
  LrCache cache(small_config());
  const Ipv4Addr addr = addr_in_set(0, 1);
  EXPECT_TRUE(cache.reserve(addr, Origin::kRemote, 0));
  EXPECT_EQ(cache.invalidate_matching(*net::Prefix::parse("0.0.0.0/24")), 0u);
  EXPECT_EQ(cache.probe(addr, 1).state, ProbeState::kWaiting);
  EXPECT_TRUE(cache.fill(addr, 7, 2));
  EXPECT_EQ(cache.stats().orphan_fills, 0u);
  EXPECT_EQ(cache.stats().fills, 1u);
  EXPECT_EQ(cache.probe(addr, 3).next_hop, 7u);
}

TEST(LrCache, InvalidateMatchingCoversVictimCache) {
  LrCacheConfig config = small_config();
  config.victim_blocks = 4;
  config.remote_fraction = 0.0;  // all 4 ways LOC: easy to force demotion
  LrCache cache(config);
  for (std::uint32_t tag = 1; tag <= 5; ++tag) {
    cache.insert(addr_in_set(0, tag), tag, Origin::kLocal, tag);
  }
  ASSERT_GT(cache.stats().evictions, 0u);  // someone was demoted to victim
  const std::size_t dropped =
      cache.invalidate_matching(*net::Prefix::parse("0.0.0.0/24"));
  EXPECT_EQ(dropped, 5u);  // all five live results, set and victim alike
  for (std::uint32_t tag = 1; tag <= 5; ++tag) {
    EXPECT_EQ(cache.probe(addr_in_set(0, tag), 10 + tag).state,
              ProbeState::kMiss);
  }
}

TEST(LrCache, FlushTurnsInFlightFillsIntoOrphans) {
  // The paper's flush-everything policy destroys waiting blocks; the fill
  // arriving afterwards must be counted as an orphan, not crash or
  // resurrect the block.
  LrCache cache(small_config());
  const Ipv4Addr addr = addr_in_set(0, 1);
  EXPECT_TRUE(cache.reserve(addr, Origin::kRemote, 0));
  cache.flush();
  EXPECT_FALSE(cache.fill(addr, 7, 1));
  EXPECT_EQ(cache.stats().orphan_fills, 1u);
  EXPECT_EQ(cache.probe(addr, 2).state, ProbeState::kMiss);
}

}  // namespace
