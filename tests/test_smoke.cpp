// End-to-end smoke test: a small SPAL router resolves every packet and the
// resolved next hops agree with a full-table oracle.
#include <gtest/gtest.h>

#include "core/spal.h"

namespace {

using namespace spal;

TEST(Smoke, SpalRouterResolvesAllPacketsCorrectly) {
  net::TableGenConfig table_config;
  table_config.size = 2000;
  table_config.seed = 7;
  const net::RouteTable table = net::generate_table(table_config);

  core::RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 2000;
  config.cache.blocks = 256;

  core::RouterSim router(table, config);
  trace::WorkloadProfile profile = trace::profile_d75();
  profile.flows = 3000;
  const core::RouterResult result = router.run_workload(profile, /*verify=*/true);

  EXPECT_EQ(result.resolved_packets, 4u * 2000u);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_GT(result.mean_lookup_cycles(), 0.0);
}

}  // namespace
