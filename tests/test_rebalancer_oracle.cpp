// Differential and ledger tests for the online load rebalancer
// (RouterConfig::rebalancer). The load-bearing properties:
//   * a disabled rebalancer (even with every knob armed) is byte-identical
//     to the baseline on both engines, as is a uniform-weight partition;
//   * with the rebalancer migrating fragments mid-trace, every resolved
//     next hop still agrees with the full-table binary-trie oracle (verify
//     mode), across Zipf and flash-crowd workloads, fuzzed seeds, and live
//     route churn landing mid-copy;
//   * the rebalancer ledger balances: every skew detection is acted on or
//     accounted to exactly one skipped_* counter, and completed migrations
//     match the failover ledger's cutover count — the same conservation
//     rules `spal_report --check` enforces;
//   * the inject_stale test hook genuinely breaks the staged structure, and
//     verify mode catches it (the WILL_FAIL CI leg's in-process mirror).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/table_gen.h"

namespace {

using namespace spal;
using core::RouterConfig;
using core::RouterResult;
using core::RouterSim;
using core::RouterSim6;

net::RouteTable small_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 907;
  return net::generate_table(config);
}

trace::WorkloadProfile zipf_profile() {
  trace::WorkloadProfile profile = trace::profile_zipf1();
  profile.flows = 2'000;
  return profile;
}

trace::WorkloadProfile flash_profile() {
  trace::WorkloadProfile profile = trace::profile_flash_crowd();
  profile.flows = 2'000;
  return profile;
}

/// Uncongested fabric + a short trace, rebalancer sampling every 10k
/// cycles with the threshold floored so every non-empty window detects
/// skew (max/mean >= 1 always holds).
RouterConfig rebalancer_config(int num_lcs) {
  RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 2'000;
  config.cache.blocks = 512;
  config.line_rate_gbps = 10.0;
  config.rebalancer.enabled = true;
  config.rebalancer.window_cycles = 10'000;
  config.rebalancer.skew_threshold = 1.0;
  config.rebalancer.max_migrations = 4;
  return config;
}

/// The conservation rules every rebalancer run must satisfy (the
/// in-process mirror of spal_report --check's rebalancer block).
void expect_rebalancer_ledger(const RouterResult& result,
                              std::uint64_t injected) {
  EXPECT_EQ(result.resolved_packets, injected);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.latency.count(), injected);
  const auto& rb = result.rebalancer;
  EXPECT_TRUE(rb.enabled);
  EXPECT_GT(rb.windows, 0u);
  EXPECT_LE(rb.skew_detections, rb.windows);
  EXPECT_EQ(rb.skew_detections,
            rb.migrations_triggered + rb.skipped_in_flight +
                rb.skipped_no_target + rb.skipped_budget);
  EXPECT_LE(rb.completed_migrations + rb.aborted_migrations,
            rb.migrations_triggered);
  EXPECT_EQ(result.failover.migrations, rb.completed_migrations);
}

// ----- Disabled-rebalancer byte-identity -----------------------------------

TEST(RebalancerOracle, DisabledIsByteIdenticalOnBothEngines) {
  // Arming every rebalancer knob while leaving `enabled` off must not
  // perturb a run in any way, on the sequential and the sharded engine.
  RouterConfig plain = core::spal_default_config(4);
  plain.packets_per_lc = 1'500;
  RouterConfig armed = plain;
  armed.rebalancer.window_cycles = 1'000;
  armed.rebalancer.skew_threshold = 1.0;
  armed.rebalancer.max_migrations = 64;
  armed.rebalancer.inject_stale = true;  // dormant without `enabled`

  for (const bool sharded : {false, true}) {
    SCOPED_TRACE(sharded ? "sharded" : "sequential");
    RouterConfig a = plain;
    RouterConfig b = armed;
    if (sharded) {
      a.execution = b.execution = RouterConfig::ExecutionMode::kSharded;
      a.threads = b.threads = 4;
    }
    RouterSim ra(small_table(), a);
    RouterSim rb(small_table(), b);
    EXPECT_EQ(ra.run_workload(zipf_profile(), true).to_json(),
              rb.run_workload(zipf_profile(), true).to_json());
  }
}

TEST(RebalancerOracle, UniformPartitionWeightsAreByteIdentical) {
  // A uniform traffic-weight vector is the count-balanced degenerate case
  // end to end: the full run report must not move by a byte.
  RouterConfig plain = core::spal_default_config(4);
  plain.packets_per_lc = 1'500;
  RouterConfig weighted = plain;
  weighted.partition_config.weights =
      std::vector<double>(small_table().size(), 0.25);
  RouterSim a(small_table(), plain);
  RouterSim b(small_table(), weighted);
  EXPECT_EQ(a.run_workload(zipf_profile(), true).to_json(),
            b.run_workload(zipf_profile(), true).to_json());
}

// ----- Skew detection drives ledgered migrations ---------------------------

TEST(RebalancerOracle, ZipfSkewTriggersLedgeredMigrations) {
  RouterConfig config = rebalancer_config(4);
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(zipf_profile(), /*verify=*/true);
  expect_rebalancer_ledger(result, 4 * config.packets_per_lc);
  const auto& rb = result.rebalancer;
  // The Zipf head concentrates load, so the floored threshold detects skew
  // and at least one migration runs copy-to-cutover within the trace.
  EXPECT_GT(rb.skew_detections, 0u);
  EXPECT_GT(rb.migrations_triggered, 0u);
  EXPECT_GT(rb.completed_migrations, 0u);
  EXPECT_EQ(rb.aborted_migrations, 0u);  // nothing died mid-copy
  EXPECT_LE(rb.migrations_triggered,
            static_cast<std::uint64_t>(config.rebalancer.max_migrations));
  EXPECT_GT(result.failover.migration_chunks, 0u);
}

// ----- Differential fuzz: rebalancer on vs off, oracle-checked -------------

TEST(RebalancerOracle, WorkloadAndSeedFuzzStaysOracleClean) {
  // Across workload shapes and seeds: the run with migrations enabled must
  // resolve every packet to the same next hop the full-table binary-trie
  // oracle computes (verify mode byte-compares each resolution), exactly
  // like the run without.
  for (trace::WorkloadProfile profile : {zipf_profile(), flash_profile()}) {
    for (const std::uint64_t salt : {0ull, 0x5eedull, 0xbeefull}) {
      profile.seed ^= salt;
      SCOPED_TRACE(profile.name + " salt=" + std::to_string(salt));
      RouterConfig off = rebalancer_config(4);
      off.rebalancer.enabled = false;
      RouterConfig on = rebalancer_config(4);
      RouterSim base(small_table(), off);
      RouterSim rebalanced(small_table(), on);
      const RouterResult r_off = base.run_workload(profile, /*verify=*/true);
      const RouterResult r_on =
          rebalanced.run_workload(profile, /*verify=*/true);
      EXPECT_EQ(r_off.verify_mismatches, 0u);
      expect_rebalancer_ledger(r_on, 4 * on.packets_per_lc);
      EXPECT_EQ(r_on.resolved_packets, r_off.resolved_packets);
    }
  }
}

TEST(RebalancerOracle, LiveChurnAcrossMigrationsStaysOracleClean) {
  // Route updates land while fragments are mid-copy: deltas must be
  // double-delivered into the staged structure and replayed at the final
  // chunk, so post-cutover resolutions track the churning oracle exactly.
  RouterConfig config = rebalancer_config(4);
  config.migration.chunk_prefixes = 64;     // stretch the copy window
  config.migration.chunk_interval_cycles = 64;
  config.update.interval_cycles = 500;
  config.update.count = 120;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(zipf_profile(), /*verify=*/true);
  expect_rebalancer_ledger(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.rebalancer.completed_migrations, 0u);
  EXPECT_GT(result.update.applications, 0u);
}

// ----- The staleness injection hook must be caught by verify ---------------

TEST(RebalancerOracle, InjectedStalenessIsCaughtByVerify) {
  // inject_stale drops the deltas buffered during the copy instead of
  // replaying them, making the cut-over structure genuinely stale. The
  // differential harness has to catch that — otherwise the harness itself
  // is vacuous. Same config with the hook off must stay clean.
  RouterConfig config = rebalancer_config(4);
  config.rebalancer.max_migrations = 1;
  config.migration.chunk_prefixes = 32;     // long copy window
  config.migration.chunk_interval_cycles = 128;
  config.update.interval_cycles = 100;
  config.update.count = 500;

  RouterConfig stale = config;
  stale.rebalancer.inject_stale = true;
  RouterSim honest(small_table(), config);
  RouterSim broken(small_table(), stale);
  const RouterResult good = honest.run_workload(zipf_profile(), true);
  const RouterResult bad = broken.run_workload(zipf_profile(), true);
  ASSERT_GT(good.rebalancer.completed_migrations, 0u);
  ASSERT_GT(bad.rebalancer.completed_migrations, 0u);
  EXPECT_EQ(good.verify_mismatches, 0u);
  EXPECT_GT(bad.verify_mismatches, 0u);
}

// ----- Config validation ---------------------------------------------------

TEST(RebalancerOracle, RejectsUnpartitionedAndConflictingConfigs) {
  const net::RouteTable table = small_table();
  {
    // Rebalancing a single-LC router is meaningless.
    RouterConfig config = rebalancer_config(4);
    config.num_lcs = 1;
    RouterSim router(table, config);
    EXPECT_THROW(router.run_workload(zipf_profile()), std::invalid_argument);
  }
  {
    // Operator migration and the rebalancer both own the migration state
    // machine; running both must be rejected loudly.
    RouterConfig config = rebalancer_config(4);
    config.migration.enabled = true;
    config.migration.from = 1;
    config.migration.to = 3;
    RouterSim router(table, config);
    EXPECT_THROW(router.run_workload(zipf_profile()), std::invalid_argument);
  }
  {
    RouterConfig config = rebalancer_config(4);
    config.rebalancer.window_cycles = 0;
    RouterSim router(table, config);
    EXPECT_THROW(router.run_workload(zipf_profile()), std::invalid_argument);
  }
}

// ----- IPv6 family ---------------------------------------------------------

TEST(RebalancerOracle, Ipv6FamilyRebalancesOracleClean) {
  net::TableGen6Config table_config;
  table_config.size = 2'000;
  table_config.seed = 911;
  RouterConfig config = rebalancer_config(4);
  RouterSim6 router(net::generate_table6(table_config), config);
  const RouterResult result =
      router.run_workload(zipf_profile(), /*verify=*/true);
  expect_rebalancer_ledger(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.rebalancer.skew_detections, 0u);
}

}  // namespace
