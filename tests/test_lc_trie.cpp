#include "trie/lc_trie.h"

#include <gtest/gtest.h>

#include <random>

#include "net/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using trie::LcTrie;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(LcTrie, SplitsInternalPrefixesOut) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);    // covers the two below -> internal
  table.add(p("10.1.0.0/16"), 2);   // covers the /24 -> internal
  table.add(p("10.1.2.0/24"), 3);
  table.add(p("192.0.2.0/24"), 4);
  const LcTrie trie(table);
  EXPECT_EQ(trie.internal_count(), 2u);
  EXPECT_EQ(trie.base_count(), 2u);
}

TEST(LcTrie, PrefixChainServesCoveredAddresses) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.1.0.0/16"), 2);
  table.add(p("10.1.2.0/24"), 3);
  const LcTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010201u}), 3u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A01FF00u}), 2u);  // chain hop 1
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0AFF0000u}), 1u);  // chain hop 2
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0B000000u}), net::kNoRoute);
}

TEST(LcTrie, EmptyChildLeafIsRejectedByComparison) {
  // Sparse sibling set under a wide branch: addresses falling into empty
  // children must not return the neighbouring leaf's next hop.
  RouteTable table;
  table.add(p("0.0.0.0/8"), 1);
  table.add(p("255.0.0.0/8"), 2);
  const LcTrie trie(table, /*fill_factor=*/0.1);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x00000001u}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0xFF000001u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x80000001u}), net::kNoRoute);
}

class LcTrieFillFactorTest : public ::testing::TestWithParam<double> {};

TEST_P(LcTrieFillFactorTest, OracleAgreementAcrossFillFactors) {
  net::TableGenConfig config;
  config.size = 8'000;
  config.seed = 51;
  const RouteTable table = net::generate_table(config);
  const trie::BinaryTrie oracle(table);
  const LcTrie trie(table, GetParam());
  std::mt19937_64 rng(6);
  for (int i = 0; i < 10'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(trie.lookup(addr), oracle.lookup(addr))
        << "fill=" << GetParam() << " at " << addr.to_string();
  }
}

TEST_P(LcTrieFillFactorTest, NodeCountShrinksRelativeToBinary) {
  net::TableGenConfig config;
  config.size = 8'000;
  config.seed = 51;
  const RouteTable table = net::generate_table(config);
  const trie::BinaryTrie binary(table);
  const LcTrie trie(table, GetParam());
  EXPECT_LT(trie.node_count(), binary.node_count());
}

INSTANTIATE_TEST_SUITE_P(FillFactors, LcTrieFillFactorTest,
                         ::testing::Values(0.125, 0.25, 0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "fill_" +
                                  std::to_string(static_cast<int>(info.param * 1000));
                         });

TEST(LcTrie, LowerFillFactorGivesWiderBranchesFewerLevels) {
  net::TableGenConfig config;
  config.size = 20'000;
  config.seed = 52;
  const RouteTable table = net::generate_table(config);
  const LcTrie dense(table, 1.0);
  const LcTrie sparse(table, 0.25);
  // A lower fill factor trades nodes for depth: fewer mean accesses.
  const double dense_accesses = trie::mean_accesses_per_lookup(dense, table, 3'000, 1);
  const double sparse_accesses = trie::mean_accesses_per_lookup(sparse, table, 3'000, 1);
  EXPECT_LT(sparse_accesses, dense_accesses);
  EXPECT_GE(sparse.node_count(), dense.node_count());
}

TEST(LcTrie, StorageModelMatchesComponentCounts) {
  net::TableGenConfig config;
  config.size = 1'000;
  config.seed = 53;
  const LcTrie trie(net::generate_table(config));
  EXPECT_EQ(trie.storage_bytes(),
            trie.node_count() * 4 + trie.base_count() * 12 + trie.internal_count() * 8);
}

TEST(LcTrie, SingleEntryTable) {
  RouteTable table;
  table.add(p("10.1.2.0/24"), 1);
  const LcTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010201u}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010301u}), net::kNoRoute);
}

TEST(LcTrie, DefaultRouteOnlyTable) {
  RouteTable table;
  table.add(p("0.0.0.0/0"), 7);
  const LcTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x12345678u}), 7u);
}

TEST(LcTrie, NameIsLc) {
  EXPECT_EQ(LcTrie(RouteTable{}).name(), "lc");
}

}  // namespace
