#include "trie/dp_trie6.h"

#include <gtest/gtest.h>

#include <random>

#include "trie/binary_trie6.h"

namespace {

using namespace spal;
using net::Ipv6Addr;
using net::Prefix6;
using net::RouteTable6;
using trie::DpTrie6;

Prefix6 p6(std::uint64_t hi, std::uint64_t lo, int len) {
  return Prefix6(Ipv6Addr{hi, lo}, len);
}

TEST(DpTrie6, EmptyTable) {
  const DpTrie6 trie{RouteTable6{}};
  EXPECT_EQ(trie.lookup(Ipv6Addr{1, 2}), net::kNoRoute);
}

TEST(DpTrie6, LongestMatchAcrossHalves) {
  RouteTable6 table;
  table.add(p6(0x2001000000000000ULL, 0, 16), 1);
  table.add(p6(0x20010DB800000000ULL, 0, 32), 2);
  table.add(p6(0x20010DB800000000ULL, 0xAB00000000000000ULL, 72), 3);
  const DpTrie6 trie(table);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB800000000ULL, 0xAB00000000000001ULL}), 3u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB800000000ULL, 0xAC00000000000000ULL}), 2u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x2001FFFF00000000ULL, 0}), 1u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x3000000000000000ULL, 0}), net::kNoRoute);
}

TEST(DpTrie6, SkippedBitMismatchFallsToAncestor) {
  RouteTable6 table;
  table.add(p6(0x2000000000000000ULL, 0, 8), 1);
  table.add(p6(0x20FFFFFF00000000ULL, 0, 48), 2);  // lone deep descendant
  const DpTrie6 trie(table);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20FFFFFF00000001ULL, 0}), 2u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x2012345600000000ULL, 0}), 1u);
}

TEST(DpTrie6, AgreesWithOracleOnGeneratedTables) {
  net::TableGen6Config config;
  config.size = 8'000;
  config.seed = 801;
  const RouteTable6 table = net::generate_table6(config);
  const trie::BinaryTrie6 oracle(table);
  const DpTrie6 trie(table);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 20'000; ++i) {
    const Ipv6Addr addr =
        (i % 2 == 0)
            ? Ipv6Addr{rng() | 0x2000000000000000ULL, rng()}
            : net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(trie.lookup(addr), oracle.lookup(addr)) << addr.to_string();
  }
}

TEST(DpTrie6, NodeCountBounded) {
  net::TableGen6Config config;
  config.size = 8'000;
  config.seed = 802;
  const RouteTable6 table = net::generate_table6(config);
  const DpTrie6 trie(table);
  EXPECT_LE(trie.node_count(), 2 * table.size() + 1);
  EXPECT_EQ(trie.storage_bytes(), trie.node_count() * 37);
}

TEST(DpTrie6, FarFewerAccessesThanBinaryWalk) {
  net::TableGen6Config config;
  config.size = 8'000;
  config.seed = 803;
  const RouteTable6 table = net::generate_table6(config);
  const trie::BinaryTrie6 binary(table);
  const DpTrie6 compressed(table);
  std::mt19937_64 rng(6);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  trie::MemAccessCounter binary_counter, dp_counter;
  for (int i = 0; i < 3'000; ++i) {
    const auto addr =
        net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(compressed.lookup_counted(addr, dp_counter),
              binary.lookup_counted(addr, binary_counter));
  }
  // Path compression bounds the walk by the prefix population (tens of
  // levels), not the 128-bit address width.
  EXPECT_LT(dp_counter.total() * 2, binary_counter.total());
}

TEST(DpTrie6, InsertThenLookup) {
  DpTrie6 trie{RouteTable6{}};
  trie.insert(p6(0x2001000000000000ULL, 0, 16), 1);
  trie.insert(p6(0x20010DB800000000ULL, 0, 32), 2);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB800000000ULL, 1}), 2u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x2001FF0000000000ULL, 1}), 1u);
  trie.insert(p6(0x20010DB800000000ULL, 0, 32), 5);  // replace in place
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB800000000ULL, 1}), 5u);
}

TEST(DpTrie6, RemoveFallsBackToAncestor) {
  RouteTable6 table;
  table.add(p6(0x2001000000000000ULL, 0, 16), 1);
  table.add(p6(0x20010DB800000000ULL, 0, 32), 2);
  DpTrie6 trie(table);
  EXPECT_TRUE(trie.remove(p6(0x20010DB800000000ULL, 0, 32)));
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB800000000ULL, 1}), 1u);
  EXPECT_FALSE(trie.remove(p6(0x20010DB800000000ULL, 0, 32)));
  // A prefix that only exists as an interior path is not removable.
  EXPECT_FALSE(trie.remove(p6(0x2001000000000000ULL, 0, 24)));
}

TEST(DpTrie6, SpliceReusesFreedNodes) {
  DpTrie6 trie{RouteTable6{}};
  const std::size_t baseline = trie.node_count();
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      trie.insert(p6(0x2001000000000000ULL | (i << 16), 0, 48), i + 1);
    }
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(trie.remove(p6(0x2001000000000000ULL | (i << 16), 0, 48)));
    }
    EXPECT_EQ(trie.node_count(), baseline);
  }
  EXPECT_EQ(trie.storage_bytes(), baseline * 37);
}

TEST(DpTrie6, CountedMatchesPlain) {
  RouteTable6 table;
  table.add(p6(0x20010DB800000000ULL, 0, 32), 1);
  const DpTrie6 trie(table);
  trie::MemAccessCounter counter;
  const Ipv6Addr addr{0x20010DB800000000ULL, 7};
  EXPECT_EQ(trie.lookup_counted(addr, counter), trie.lookup(addr));
  EXPECT_GT(counter.total(), 0u);
  EXPECT_LT(counter.total(), 10u);
}

}  // namespace
