#include "net/prefix.h"

#include <gtest/gtest.h>

namespace {

using spal::net::Ipv4Addr;
using spal::net::Prefix;
using spal::net::PrefixBit;

Prefix p(const char* text) {
  const auto prefix = Prefix::parse(text);
  EXPECT_TRUE(prefix.has_value()) << text;
  return *prefix;
}

TEST(Prefix, DefaultIsDefaultRoute) {
  const Prefix d;
  EXPECT_EQ(d.length(), 0);
  EXPECT_EQ(d.bits(), 0u);
}

TEST(Prefix, ConstructionMasksHostBits) {
  const Prefix prefix(Ipv4Addr{0x0A0102FFu}, 24);
  EXPECT_EQ(prefix.bits(), 0x0A010200u);
  EXPECT_EQ(prefix.length(), 24);
}

TEST(Prefix, ZeroLengthMasksEverything) {
  const Prefix prefix(Ipv4Addr{0xFFFFFFFFu}, 0);
  EXPECT_EQ(prefix.bits(), 0u);
}

TEST(Prefix, FullLengthKeepsEverything) {
  const Prefix prefix(Ipv4Addr{0xDEADBEEFu}, 32);
  EXPECT_EQ(prefix.bits(), 0xDEADBEEFu);
}

TEST(Prefix, ParseWithLength) {
  const Prefix prefix = p("10.1.0.0/16");
  EXPECT_EQ(prefix.bits(), 0x0A010000u);
  EXPECT_EQ(prefix.length(), 16);
}

TEST(Prefix, ParseBareAddressIsHostRoute) {
  EXPECT_EQ(p("1.2.3.4").length(), 32);
}

TEST(Prefix, ParseDefaultRoute) {
  const Prefix prefix = p("0.0.0.0/0");
  EXPECT_EQ(prefix.length(), 0);
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("1.2.3.4/33").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/-1").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/").has_value());
  EXPECT_FALSE(Prefix::parse("1.2.3.4/8x").has_value());
}

TEST(Prefix, ParseRejectsBadAddress) {
  EXPECT_FALSE(Prefix::parse("1.2.3/8").has_value());
  EXPECT_FALSE(Prefix::parse("/8").has_value());
}

TEST(Prefix, ToStringRoundTrips) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "1.2.3.4/32"}) {
    EXPECT_EQ(p(text).to_string(), text);
  }
}

TEST(Prefix, TriStateBits) {
  // 101* as an IPv4 prefix: 160.0.0.0/3.
  const Prefix prefix(Ipv4Addr{0xA0000000u}, 3);
  EXPECT_EQ(prefix.bit(0), PrefixBit::kOne);
  EXPECT_EQ(prefix.bit(1), PrefixBit::kZero);
  EXPECT_EQ(prefix.bit(2), PrefixBit::kOne);
  EXPECT_EQ(prefix.bit(3), PrefixBit::kStar);
  EXPECT_EQ(prefix.bit(31), PrefixBit::kStar);
}

TEST(Prefix, DefaultRouteIsAllStars) {
  const Prefix d;
  for (int i = 0; i < 32; ++i) EXPECT_EQ(d.bit(i), PrefixBit::kStar) << i;
}

TEST(Prefix, MatchesInsideRange) {
  const Prefix prefix = p("10.1.0.0/16");
  EXPECT_TRUE(prefix.matches(Ipv4Addr{0x0A010000u}));
  EXPECT_TRUE(prefix.matches(Ipv4Addr{0x0A01FFFFu}));
  EXPECT_TRUE(prefix.matches(Ipv4Addr{0x0A01ABCDu}));
}

TEST(Prefix, RejectsOutsideRange) {
  const Prefix prefix = p("10.1.0.0/16");
  EXPECT_FALSE(prefix.matches(Ipv4Addr{0x0A020000u}));
  EXPECT_FALSE(prefix.matches(Ipv4Addr{0x0A00FFFFu}));
  EXPECT_FALSE(prefix.matches(Ipv4Addr{0x0B010000u}));
}

TEST(Prefix, DefaultRouteMatchesEverything) {
  EXPECT_TRUE(p("0.0.0.0/0").matches(Ipv4Addr{0u}));
  EXPECT_TRUE(p("0.0.0.0/0").matches(Ipv4Addr{0xFFFFFFFFu}));
}

TEST(Prefix, HostRouteMatchesExactlyOne) {
  const Prefix prefix = p("1.2.3.4/32");
  EXPECT_TRUE(prefix.matches(Ipv4Addr{0x01020304u}));
  EXPECT_FALSE(prefix.matches(Ipv4Addr{0x01020305u}));
  EXPECT_FALSE(prefix.matches(Ipv4Addr{0x01020303u}));
}

TEST(Prefix, CoversShorterOverLonger) {
  EXPECT_TRUE(p("10.0.0.0/8").covers(p("10.1.0.0/16")));
  EXPECT_FALSE(p("10.1.0.0/16").covers(p("10.0.0.0/8")));
  EXPECT_TRUE(p("10.0.0.0/8").covers(p("10.0.0.0/8")));
  EXPECT_FALSE(p("10.0.0.0/8").covers(p("11.0.0.0/16")));
  EXPECT_TRUE(p("0.0.0.0/0").covers(p("1.2.3.4/32")));
}

TEST(Prefix, RangeEndpoints) {
  const Prefix prefix = p("10.1.0.0/16");
  EXPECT_EQ(prefix.range_first().value(), 0x0A010000u);
  EXPECT_EQ(prefix.range_last().value(), 0x0A01FFFFu);
  EXPECT_EQ(p("0.0.0.0/0").range_last().value(), 0xFFFFFFFFu);
  EXPECT_EQ(p("1.2.3.4/32").range_last().value(), 0x01020304u);
}

TEST(Prefix, EqualityIgnoresMaskedHostBits) {
  EXPECT_EQ(Prefix(Ipv4Addr{0x0A0100FFu}, 16), Prefix(Ipv4Addr{0x0A010000u}, 16));
  EXPECT_NE(Prefix(Ipv4Addr{0x0A010000u}, 16), Prefix(Ipv4Addr{0x0A010000u}, 17));
}

TEST(Prefix, MatchesIffAddressWithinEndpoints) {
  // Property sweep over all /28s in one /24.
  for (std::uint32_t base = 0xC0000200u; base < 0xC0000300u; base += 16) {
    const Prefix prefix(Ipv4Addr{base}, 28);
    for (std::uint32_t a = base - 4; a < base + 20; ++a) {
      const bool inside = a >= prefix.range_first().value() &&
                          a <= prefix.range_last().value();
      EXPECT_EQ(prefix.matches(Ipv4Addr{a}), inside) << std::hex << a;
    }
  }
}

}  // namespace
