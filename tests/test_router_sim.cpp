// End-to-end router-simulation tests: the SPAL lookup flow must resolve
// every packet exactly once with full-table-correct next hops, across the
// whole configuration space.
#include "core/router_sim.h"

#include <gtest/gtest.h>

#include <random>

#include "net/table_gen.h"

namespace {

using namespace spal;
using core::RouterConfig;
using core::RouterResult;
using core::RouterSim;

net::RouteTable small_table(std::uint64_t seed = 201) {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = seed;
  return net::generate_table(config);
}

RouterConfig small_config(int num_lcs) {
  RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 3'000;
  config.cache.blocks = 512;
  return config;
}

trace::WorkloadProfile small_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

struct ConfigCase {
  const char* label;
  int num_lcs;
  bool partition;
  bool use_cache;
  bool early_reservation;
  trie::TrieKind trie;
};

const ConfigCase kConfigs[] = {
    {"spal_psi4", 4, true, true, true, trie::TrieKind::kLulea},
    {"spal_psi16", 16, true, true, true, trie::TrieKind::kLulea},
    {"spal_psi3_nonpow2", 3, true, true, true, trie::TrieKind::kLulea},
    {"spal_psi1", 1, true, true, true, trie::TrieKind::kLulea},
    {"spal_dp_trie", 4, true, true, true, trie::TrieKind::kDp},
    {"spal_lc_trie", 4, true, true, true, trie::TrieKind::kLc},
    {"no_early_reservation", 4, true, true, false, trie::TrieKind::kLulea},
    {"cache_only", 4, false, true, true, trie::TrieKind::kLulea},
    {"partition_only", 4, true, false, true, trie::TrieKind::kLulea},
    {"conventional", 4, false, false, true, trie::TrieKind::kLulea},
};

class RouterConfigSpaceTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(RouterConfigSpaceTest, AllPacketsResolveCorrectly) {
  const ConfigCase& c = GetParam();
  RouterConfig config = small_config(c.num_lcs);
  config.partition = c.partition;
  config.use_lr_cache = c.use_cache;
  config.early_reservation = c.early_reservation;
  config.trie = c.trie;
  // Low line rate keeps the conventional (no-cache) cases from queueing
  // unboundedly while still exercising the whole flow.
  config.line_rate_gbps = 10.0;
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets,
            static_cast<std::uint64_t>(c.num_lcs) * config.packets_per_lc);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.latency.count(), result.resolved_packets);
  EXPECT_GT(result.makespan_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(ConfigSpace, RouterConfigSpaceTest,
                         ::testing::ValuesIn(kConfigs),
                         [](const ::testing::TestParamInfo<ConfigCase>& info) {
                           return info.param.label;
                         });

TEST(RouterSim, DeterministicAcrossRuns) {
  RouterSim router(small_table(), small_config(4));
  const RouterResult a = router.run_workload(small_profile());
  const RouterResult b = router.run_workload(small_profile());
  EXPECT_EQ(a.latency.total_cycles(), b.latency.total_cycles());
  EXPECT_EQ(a.cache_total.hits, b.cache_total.hits);
  EXPECT_EQ(a.fe_lookups, b.fe_lookups);
  EXPECT_EQ(a.remote_requests, b.remote_requests);
}

TEST(RouterSim, PerLcCountersDecomposeRouterTotals) {
  constexpr int kPsi = 4;
  RouterSim router(small_table(), small_config(kPsi));
  const RouterResult result = router.run_workload(small_profile());

  ASSERT_EQ(result.per_lc.size(), static_cast<std::size_t>(kPsi));
  ASSERT_EQ(result.per_lc_latency.size(), static_cast<std::size_t>(kPsi));
  ASSERT_EQ(result.remote_fanout.size(),
            static_cast<std::size_t>(kPsi) * kPsi);

  // Per-LC latency counts partition the resolved packets.
  std::uint64_t latency_count = 0;
  for (const auto& stats : result.per_lc_latency) latency_count += stats.count();
  EXPECT_EQ(latency_count, result.latency.count());
  EXPECT_EQ(latency_count, result.resolved_packets);

  // Per-LC cache counters sum to the router-wide totals, and the hit
  // breakdown is internally consistent.
  cache::LrCacheStats sum;
  std::uint64_t fe_lookups = 0;
  for (const auto& lc : result.per_lc) {
    sum.accumulate(lc.cache);
    fe_lookups += lc.fe_lookups;
    EXPECT_LE(lc.fe_utilization, 1.0);
    EXPECT_GE(lc.fe_utilization, 0.0);
  }
  EXPECT_EQ(sum.probes, result.cache_total.probes);
  EXPECT_EQ(sum.hits, result.cache_total.hits);
  EXPECT_EQ(sum.misses, result.cache_total.misses);
  EXPECT_EQ(sum.waiting_hits, result.cache_total.waiting_hits);
  EXPECT_EQ(sum.victim_hits, result.cache_total.victim_hits);
  EXPECT_EQ(sum.loc_hits, result.cache_total.loc_hits);
  EXPECT_EQ(sum.rem_hits, result.cache_total.rem_hits);
  EXPECT_EQ(fe_lookups, result.fe_lookups);
  EXPECT_EQ(result.cache_total.hits,
            result.cache_total.loc_hits + result.cache_total.rem_hits);
  EXPECT_EQ(result.cache_total.probes,
            result.cache_total.hits + result.cache_total.misses +
                result.cache_total.waiting_hits);

  // Fabric: one reply per remote request, and every message leaves one
  // port and arrives at another.
  EXPECT_EQ(result.fabric.messages,
            result.remote_requests + result.remote_replies);
  EXPECT_GT(result.remote_requests, 0u);  // ψ = 4 must produce fan-out
  ASSERT_EQ(result.fabric.ports.size(), static_cast<std::size_t>(kPsi));
  std::uint64_t sent = 0, received = 0;
  for (const auto& port : result.fabric.ports) {
    sent += port.sent;
    received += port.received;
  }
  EXPECT_EQ(sent, result.fabric.messages);
  EXPECT_EQ(received, result.fabric.messages);

  // The fan-out matrix counts each remote request once, never diagonally
  // (an LC does not send itself a fabric request).
  std::uint64_t fanout = 0;
  for (int src = 0; src < kPsi; ++src) {
    for (int home = 0; home < kPsi; ++home) {
      const std::uint64_t cell = result.remote_fanout[src * kPsi + home];
      fanout += cell;
      if (src == home) {
        EXPECT_EQ(cell, 0u) << "src=" << src;
      }
    }
  }
  EXPECT_EQ(fanout, result.remote_requests);
}

TEST(RouterSim, JsonReportRoundTripsKeyCounters) {
  RouterSim router(small_table(), small_config(2));
  const RouterResult result = router.run_workload(small_profile());
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"resolved_packets\":" +
                      std::to_string(result.resolved_packets)),
            std::string::npos);
  EXPECT_NE(json.find("\"per_lc\":["), std::string::npos);
  EXPECT_NE(json.find("\"remote_fanout\":["), std::string::npos);
  EXPECT_NE(json.find("\"waiting_highwater\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(RouterSim, RejectsBadArguments) {
  EXPECT_THROW(RouterSim(small_table(), core::spal_default_config(0)),
               std::invalid_argument);
  RouterSim router(small_table(), small_config(4));
  EXPECT_THROW(router.run({{}, {}}, false), std::invalid_argument);  // 2 != 4
}

TEST(RouterSim, ConventionalMeanIsAtLeastServiceTime) {
  RouterConfig config = small_config(2);
  config.partition = false;
  config.use_lr_cache = false;
  config.line_rate_gbps = 10.0;
  config.fe_service_cycles = 40;
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(small_profile());
  EXPECT_GE(result.mean_lookup_cycles(), 40.0);
  // All lookups run at the local FE: no fabric traffic, no cache.
  EXPECT_EQ(result.remote_requests, 0u);
  EXPECT_EQ(result.fe_lookups, result.resolved_packets);
}

TEST(RouterSim, SpalCutsFeLoadViaCaching) {
  RouterConfig config = small_config(4);
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(small_profile());
  // With working LR-caches most packets never reach an FE.
  EXPECT_LT(static_cast<double>(result.fe_lookups),
            0.5 * static_cast<double>(result.resolved_packets));
}

TEST(RouterSim, RemoteShareMatchesPartitionFanout) {
  // With ψ=4 partitions, ~3/4 of destinations are homed remotely; remote
  // requests happen only on arrival-LC misses.
  RouterConfig config = small_config(4);
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(small_profile());
  EXPECT_GT(result.remote_requests, 0u);
  EXPECT_LT(result.remote_requests, result.resolved_packets);
}

TEST(RouterSim, Psi1HasNoFabricTraffic) {
  RouterSim router(small_table(), small_config(1));
  const RouterResult result = router.run_workload(small_profile());
  EXPECT_EQ(result.remote_requests, 0u);
  EXPECT_EQ(result.fabric.messages, 0u);
}

TEST(RouterSim, BiggerCacheNeverHurtsHitRate) {
  RouterConfig small = small_config(4);
  small.cache.blocks = 128;
  RouterConfig large = small_config(4);
  large.cache.blocks = 4096;
  const net::RouteTable table = small_table();
  RouterSim small_router(table, small);
  RouterSim large_router(table, large);
  const double small_rate =
      small_router.run_workload(small_profile()).cache_total.hit_rate();
  const double large_rate =
      large_router.run_workload(small_profile()).cache_total.hit_rate();
  EXPECT_GE(large_rate + 0.01, small_rate);  // tolerance for set-mapping noise
}

TEST(RouterSim, EarlyReservationSuppressesDuplicateFeWork) {
  RouterConfig with = small_config(4);
  RouterConfig without = small_config(4);
  without.early_reservation = false;
  const net::RouteTable table = small_table();
  trace::WorkloadProfile bursty = small_profile();
  bursty.burst_mean = 8.0;  // long packet trains stress the W-bit path
  RouterSim router_with(table, with);
  RouterSim router_without(table, without);
  const auto result_with = router_with.run_workload(bursty, true);
  const auto result_without = router_without.run_workload(bursty, true);
  EXPECT_EQ(result_with.verify_mismatches, 0u);
  EXPECT_EQ(result_without.verify_mismatches, 0u);
  EXPECT_LE(result_with.fe_lookups, result_without.fe_lookups);
}

TEST(RouterSim, FlushIntervalForcesColdRestarts) {
  RouterConfig config = small_config(2);
  config.flush_interval_cycles = 2'000;
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(small_profile(), true);
  EXPECT_GT(result.cache_total.flushes, 0u);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.resolved_packets, 2u * 3'000u);
}

TEST(RouterSim, FlushingLowersHitRate) {
  RouterConfig steady = small_config(2);
  RouterConfig flushy = small_config(2);
  flushy.flush_interval_cycles = 1'000;
  const net::RouteTable table = small_table();
  RouterSim steady_router(table, steady);
  RouterSim flushy_router(table, flushy);
  EXPECT_GT(steady_router.run_workload(small_profile()).cache_total.hit_rate(),
            flushy_router.run_workload(small_profile()).cache_total.hit_rate());
}

TEST(RouterSim, TrieStorageShrinksWithPartitioning) {
  const net::RouteTable table = small_table();
  RouterConfig partitioned = small_config(4);
  RouterConfig replicated = small_config(4);
  replicated.partition = false;
  RouterSim a(table, partitioned);
  RouterSim b(table, replicated);
  const auto part_sizes = a.trie_storage_bytes();
  const auto full_sizes = b.trie_storage_bytes();
  ASSERT_EQ(part_sizes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(part_sizes[i], full_sizes[i]);
  }
}

TEST(RouterSim, WorstCaseIsBoundedInUnderload) {
  RouterConfig config = small_config(4);
  config.line_rate_gbps = 10.0;
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(small_profile());
  // Underloaded: worst case stays within a small multiple of FE service
  // plus fabric round trips.
  EXPECT_LT(result.worst_lookup_cycles(), 2'000u);
  EXPECT_GE(result.worst_lookup_cycles(),
            static_cast<std::uint64_t>(config.fe_service_cycles));
}

TEST(RouterSim, TenGigIsGentlerThanFortyGig) {
  RouterConfig slow = small_config(4);
  slow.line_rate_gbps = 10.0;
  RouterConfig fast = small_config(4);
  fast.line_rate_gbps = 40.0;
  const net::RouteTable table = small_table();
  RouterSim slow_router(table, slow);
  RouterSim fast_router(table, fast);
  const auto slow_result = slow_router.run_workload(small_profile());
  const auto fast_result = fast_router.run_workload(small_profile());
  // Same packet count at 4x the rate => makespan shrinks, congestion grows.
  EXPECT_LT(fast_result.makespan_cycles, slow_result.makespan_cycles);
  EXPECT_GE(fast_result.mean_lookup_cycles(), slow_result.mean_lookup_cycles() - 0.5);
}

TEST(RouterSim, PerLcBreakdownSumsToTotal) {
  RouterSim router(small_table(), small_config(4));
  const RouterResult result = router.run_workload(small_profile());
  ASSERT_EQ(result.per_lc_latency.size(), 4u);
  std::uint64_t count = 0, total = 0;
  for (const auto& stats : result.per_lc_latency) {
    count += stats.count();
    total += stats.total_cycles();
    EXPECT_GT(stats.count(), 0u);
  }
  EXPECT_EQ(count, result.latency.count());
  EXPECT_EQ(total, result.latency.total_cycles());
}

TEST(RouterSim, NonPowerOfTwoPsiHasHotterLcs) {
  // With 4 control-bit groups on 3 LCs, one LC homes twice the remote
  // request load; its arrival stream still resolves, but the per-LC means
  // reveal the imbalance (the ψ=3 effect documented in EXPERIMENTS.md).
  RouterConfig config = small_config(3);
  trace::WorkloadProfile scattered = small_profile();
  scattered.flows = 20'000;  // weaker locality -> visible FE pressure
  RouterSim router(small_table(), config);
  const RouterResult result = router.run_workload(scattered, true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  ASSERT_EQ(result.per_lc_latency.size(), 3u);
  double lo = 1e18, hi = 0;
  for (const auto& stats : result.per_lc_latency) {
    lo = std::min(lo, stats.mean_cycles());
    hi = std::max(hi, stats.mean_cycles());
  }
  EXPECT_GE(hi, lo);  // breakdown exists and is ordered sanely
}

TEST(RouterSim, MaxFeUtilizationIsSane) {
  RouterSim router(small_table(), small_config(4));
  const RouterResult result = router.run_workload(small_profile());
  EXPECT_GE(result.max_fe_utilization, 0.0);
  EXPECT_LE(result.max_fe_utilization, 1.0);
}

TEST(RouterSim, ExplicitStreamsRunVerified) {
  const net::RouteTable table = small_table();
  RouterConfig config = small_config(2);
  config.packets_per_lc = 100;  // unused by run(); streams decide
  RouterSim router(table, config);
  std::vector<std::vector<net::Ipv4Addr>> streams(2);
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (auto& stream : streams) {
    for (int i = 0; i < 500; ++i) {
      stream.push_back(net::random_address_in(table.entries()[pick(rng)].prefix, rng));
    }
  }
  const RouterResult result = router.run(streams, true);
  EXPECT_EQ(result.resolved_packets, 1'000u);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

}  // namespace
