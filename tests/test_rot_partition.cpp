#include "partition/rot_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "net/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using partition::PartitionConfig;
using partition::RotPartition;

RouteTable test_table(std::size_t size, std::uint64_t seed) {
  net::TableGenConfig config;
  config.size = size;
  config.seed = seed;
  return net::generate_table(config);
}

// --- The paper's worked example, explicit control bits {b2, b4} ---

RouteTable paper_example_table() {
  RouteTable table;
  table.add(Prefix(Ipv4Addr{0xA0000000u}, 3), 1);  // P1 = 101*
  table.add(Prefix(Ipv4Addr{0xB0000000u}, 4), 2);  // P2 = 1011*
  table.add(Prefix(Ipv4Addr{0x40000000u}, 2), 3);  // P3 = 01*
  table.add(Prefix(Ipv4Addr{0x38000000u}, 6), 4);  // P4 = 001110*
  table.add(Prefix(Ipv4Addr{0x93000000u}, 8), 5);  // P5 = 10010011
  table.add(Prefix(Ipv4Addr{0x98000000u}, 5), 6);  // P6 = 10011*
  table.add(Prefix(Ipv4Addr{0x64000000u}, 6), 7);  // P7 = 011001*
  return table;
}

TEST(RotPartition, PaperExamplePartitionContentsB2B4) {
  PartitionConfig config;
  config.control_bits = {2, 4};
  const RotPartition rot(paper_example_table(), 4, config);
  // Paper: {P3,P5}, {P3,P6}, {P1,P2,P3,P7}, {P1,P2,P3,P4}.
  EXPECT_EQ(rot.table_of(0).size(), 2u);
  EXPECT_EQ(rot.table_of(1).size(), 2u);
  EXPECT_EQ(rot.table_of(2).size(), 4u);
  EXPECT_EQ(rot.table_of(3).size(), 4u);
  // P3 (01*) is * at both control bits: present in every partition.
  for (int lc = 0; lc < 4; ++lc) {
    EXPECT_TRUE(rot.table_of(lc).find(Prefix(Ipv4Addr{0x40000000u}, 2)).has_value())
        << "P3 missing from partition " << lc;
  }
  // P5 = 10010011 has b2=0, b4=0: only in partition 0.
  EXPECT_TRUE(rot.table_of(0).find(Prefix(Ipv4Addr{0x93000000u}, 8)).has_value());
  EXPECT_FALSE(rot.table_of(1).find(Prefix(Ipv4Addr{0x93000000u}, 8)).has_value());
}

TEST(RotPartition, PaperExamplePartitionContentsB0B4) {
  PartitionConfig config;
  config.control_bits = {0, 4};
  const RotPartition rot(paper_example_table(), 4, config);
  // Paper: {P3,P7}, {P3,P4}, {P1,P2,P5}, {P1,P2,P6}.
  EXPECT_EQ(rot.table_of(0).size(), 2u);
  EXPECT_EQ(rot.table_of(1).size(), 2u);
  EXPECT_EQ(rot.table_of(2).size(), 3u);
  EXPECT_EQ(rot.table_of(3).size(), 3u);
}

TEST(RotPartition, PaperExampleHomeFollowsControlBits) {
  PartitionConfig config;
  config.control_bits = {2, 4};
  const RotPartition rot(paper_example_table(), 4, config);
  // Address 10010011... has b2=0, b4=0 -> home LC 0.
  EXPECT_EQ(rot.home_of(Ipv4Addr{0x93000000u}), 0);
  // b2=0, b4=1 -> LC 1 (e.g. 10001000...).
  EXPECT_EQ(rot.home_of(Ipv4Addr{0x88000000u}), 1);
  // b2=1, b4=0 -> LC 2 (e.g. 00100000...).
  EXPECT_EQ(rot.home_of(Ipv4Addr{0x20000000u}), 2);
  // b2=1, b4=1 -> LC 3 (e.g. 00101000...).
  EXPECT_EQ(rot.home_of(Ipv4Addr{0x28000000u}), 3);
}

// --- The central SPAL invariant: looking up an address in its home LC's
// --- forwarding table gives exactly the full-table LPM result.

class RotInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(RotInvariantTest, HomeLookupEqualsFullTableLookup) {
  const int num_lcs = GetParam();
  const RouteTable table = test_table(8'000, 81);
  const RotPartition rot(table, num_lcs);
  const trie::BinaryTrie oracle(table);
  std::vector<trie::BinaryTrie> partition_tries;
  partition_tries.reserve(static_cast<std::size_t>(num_lcs));
  for (int lc = 0; lc < num_lcs; ++lc) partition_tries.emplace_back(rot.table_of(lc));
  std::mt19937_64 rng(0x1234);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 10'000; ++i) {
    // Half uniform, half matched addresses.
    const Ipv4Addr addr =
        (i % 2 == 0)
            ? Ipv4Addr{static_cast<std::uint32_t>(rng())}
            : net::random_address_in(table.entries()[pick(rng)].prefix, rng);
    const int home = rot.home_of(addr);
    ASSERT_GE(home, 0);
    ASSERT_LT(home, num_lcs);
    ASSERT_EQ(partition_tries[static_cast<std::size_t>(home)].lookup(addr),
              oracle.lookup(addr))
        << "psi=" << num_lcs << " addr=" << addr.to_string();
  }
}

TEST_P(RotInvariantTest, EveryPrefixLandsInEveryMatchingGroup) {
  const int num_lcs = GetParam();
  const RouteTable table = test_table(2'000, 82);
  const RotPartition rot(table, num_lcs);
  // Union of partitions must cover the table.
  std::size_t total = 0;
  for (int lc = 0; lc < num_lcs; ++lc) total += rot.table_of(lc).size();
  EXPECT_GE(total, table.size());
}

INSTANTIATE_TEST_SUITE_P(PsiSweep, RotInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "psi_" + std::to_string(info.param);
                         });

TEST(RotPartition, SingleLcKeepsWholeTable) {
  const RouteTable table = test_table(1'000, 83);
  const RotPartition rot(table, 1);
  EXPECT_EQ(rot.num_lcs(), 1);
  EXPECT_TRUE(rot.control_bits().empty());
  EXPECT_EQ(rot.table_of(0).size(), table.size());
  EXPECT_EQ(rot.home_of(Ipv4Addr{0xDEADBEEFu}), 0);
}

TEST(RotPartition, PowerOfTwoMappingIsIdentity) {
  const RouteTable table = test_table(4'000, 84);
  const RotPartition rot(table, 8);
  const auto mapping = rot.group_to_lc();
  ASSERT_EQ(mapping.size(), 8u);
  for (int g = 0; g < 8; ++g) EXPECT_EQ(mapping[static_cast<std::size_t>(g)], g);
}

TEST(RotPartition, NonPowerOfTwoBalancesLoads) {
  const RouteTable table = test_table(12'000, 85);
  for (const int psi : {3, 5, 6, 7}) {
    const RotPartition rot(table, psi);
    const auto sizes = rot.partition_sizes();
    ASSERT_EQ(sizes.size(), static_cast<std::size_t>(psi));
    const auto [min_it, max_it] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_GT(*min_it, 0u) << "psi=" << psi;
    // LPT packing of 2^ceil(log2 psi) groups onto psi LCs: spread bounded.
    EXPECT_LT(static_cast<double>(*max_it), 2.5 * static_cast<double>(*min_it))
        << "psi=" << psi;
  }
}

TEST(RotPartition, GroupCountIsPowerOfTwoCeiling) {
  const RouteTable table = test_table(2'000, 86);
  EXPECT_EQ(RotPartition(table, 3).group_to_lc().size(), 4u);
  EXPECT_EQ(RotPartition(table, 5).group_to_lc().size(), 8u);
  EXPECT_EQ(RotPartition(table, 16).group_to_lc().size(), 16u);
}

TEST(RotPartition, PartitionShrinksPerLcTable) {
  // The paper's storage argument: per-LC prefix counts drop roughly by ψ.
  const RouteTable table = test_table(40'000, 87);
  const RotPartition rot(table, 16);
  for (const std::size_t size : rot.partition_sizes()) {
    EXPECT_LT(static_cast<double>(size),
              0.25 * static_cast<double>(table.size()));
  }
}

TEST(RotPartition, ExplicitControlBitsRespected) {
  const RouteTable table = test_table(1'000, 88);
  PartitionConfig config;
  config.control_bits = {3, 9};
  const RotPartition rot(table, 4, config);
  ASSERT_EQ(rot.control_bits().size(), 2u);
  EXPECT_EQ(rot.control_bits()[0], 3);
  EXPECT_EQ(rot.control_bits()[1], 9);
}

TEST(PartitionByLength, GroupsAreByExactLength) {
  const RouteTable table = test_table(5'000, 89);
  const auto buckets = partition::partition_by_length(table);
  ASSERT_EQ(buckets.size(), 33u);
  std::size_t total = 0;
  for (int len = 0; len <= 32; ++len) {
    for (const net::RouteEntry& e : buckets[static_cast<std::size_t>(len)].entries()) {
      EXPECT_EQ(e.prefix.length(), len);
    }
    total += buckets[static_cast<std::size_t>(len)].size();
  }
  EXPECT_EQ(total, table.size());  // no replication in the [1] baseline
}

TEST(PartitionByLength, SizesAreHighlySkewed) {
  // Sec. 2.3's critique of the [1] baseline: /24 dominates, so per-length
  // subsets are wildly unequal — unlike SPAL's ROT-partitions.
  const RouteTable table = test_table(20'000, 90);
  const auto buckets = partition::partition_by_length(table);
  const std::size_t biggest = buckets[24].size();
  EXPECT_GT(static_cast<double>(biggest), 0.3 * static_cast<double>(table.size()));
}

}  // namespace
