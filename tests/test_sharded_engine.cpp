// Differential tests for the sharded parallel event engine.
//
// The sequential engine is the oracle: for every supported configuration,
// `execution = kSharded` must produce a RouterResult whose to_json() is
// BYTE-identical to the sequential run — same latency histograms, per-LC
// stats, fabric/fault/update ledgers, everything. The matrix crosses
// ψ ∈ {1, 4, 16} with thread counts {1, 2, 8} over baseline, fault-injected,
// and live-churn scenarios.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/table_gen.h"

namespace {

using namespace spal;
using core::RouterConfig;
using core::RouterResult;
using core::RouterSim;
using core::RouterSim6;

net::RouteTable small_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 701;
  return net::generate_table(config);
}

trace::WorkloadProfile small_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

enum class Scenario { kBaseline, kFaults, kChurn };

/// Baseline and fault runs verify against the oracle (supported under the
/// sharded engine); churn runs don't (verify + churn forces the solo
/// engine, which would make the comparison trivial).
bool scenario_verifies(Scenario scenario) {
  return scenario != Scenario::kChurn;
}

RouterConfig scenario_config(int psi, Scenario scenario) {
  RouterConfig config = core::spal_default_config(psi);
  config.packets_per_lc = 2'000;
  config.cache.blocks = 512;
  config.line_rate_gbps = 10.0;
  switch (scenario) {
    case Scenario::kBaseline:
      break;
    case Scenario::kFaults:
      config.fault.enabled = true;
      config.fault.drop_probability = 0.05;
      // Port 0 exists at every ψ; a long outage exercises the degraded path.
      config.fault.outages.push_back(
          fabric::OutageWindow{/*port=*/0, /*start=*/5'000, /*end=*/50'000});
      config.recovery.max_retries = 2;
      break;
    case Scenario::kChurn:
      config.update.interval_cycles = 2'000;
      config.update.count = 40;
      config.update_policy = RouterConfig::UpdatePolicy::kSelectiveInvalidate;
      break;
  }
  return config;
}

/// threads < 0 selects the sequential engine; otherwise kSharded with the
/// given cap (0 = hardware concurrency).
std::string run_json(int psi, Scenario scenario, int threads) {
  RouterConfig config = scenario_config(psi, scenario);
  if (threads >= 0) {
    config.execution = RouterConfig::ExecutionMode::kSharded;
    config.threads = threads;
  }
  RouterSim router(small_table(), config);
  return router.run_workload(small_profile(), scenario_verifies(scenario))
      .to_json();
}

void expect_matrix_identical(Scenario scenario) {
  for (const int psi : {1, 4, 16}) {
    SCOPED_TRACE("psi=" + std::to_string(psi));
    const std::string oracle = run_json(psi, scenario, /*threads=*/-1);
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(run_json(psi, scenario, threads), oracle);
    }
  }
}

TEST(ShardedEngine, BaselineMatrixIsByteIdentical) {
  expect_matrix_identical(Scenario::kBaseline);
}

TEST(ShardedEngine, FaultInjectedMatrixIsByteIdentical) {
  expect_matrix_identical(Scenario::kFaults);
}

TEST(ShardedEngine, LiveChurnMatrixIsByteIdentical) {
  expect_matrix_identical(Scenario::kChurn);
}

TEST(ShardedEngine, RepeatedShardedRunsAreDeterministic) {
  // Thread interleavings must not leak into the result: the same sharded
  // router re-run (including the post-churn FE/fragment rebuild path)
  // reproduces the sequential oracle every time.
  const std::string oracle = run_json(4, Scenario::kChurn, /*threads=*/-1);
  RouterConfig config = scenario_config(4, Scenario::kChurn);
  config.execution = RouterConfig::ExecutionMode::kSharded;
  config.threads = 8;
  RouterSim router(small_table(), config);
  EXPECT_EQ(router.run_workload(small_profile()).to_json(), oracle);
  EXPECT_EQ(router.run_workload(small_profile()).to_json(), oracle);
}

TEST(ShardedEngine, FaultShardedRunsAreRerunnable) {
  // Per-LC request seqs and per-port fault RNGs reset per run; two sharded
  // fault runs from one router object must match each other and the oracle.
  const std::string oracle = run_json(4, Scenario::kFaults, /*threads=*/-1);
  RouterConfig config = scenario_config(4, Scenario::kFaults);
  config.execution = RouterConfig::ExecutionMode::kSharded;
  config.threads = 8;
  RouterSim router(small_table(), config);
  EXPECT_EQ(router.run_workload(small_profile(), true).to_json(), oracle);
  EXPECT_EQ(router.run_workload(small_profile(), true).to_json(), oracle);
}

TEST(ShardedEngine, TerminationGateStressOnTinyRuns) {
  // Tiny workloads spend most of their wall-clock in termination-gate
  // rounds: shards park in the barrier while stragglers are still sending,
  // so raced-in messages keep hitting the gate's poll path. Regression for
  // the race where an enter-barrier poll processed an event whose handler
  // left no local state (a remote lookup answered from the home cache, an
  // update apply that only broadcasts invalidations), the shard's recheck
  // then saw empty queue/staging and did not veto, and the round concluded
  // "terminate" with the handler's message still in flight — silently
  // dropping it. Many repetitions widen the probabilistic window.
  for (const Scenario scenario : {Scenario::kBaseline, Scenario::kChurn}) {
    SCOPED_TRACE(scenario == Scenario::kBaseline ? "baseline" : "churn");
    RouterConfig config = scenario_config(16, scenario);
    config.packets_per_lc = 64;
    if (scenario == Scenario::kChurn) {
      config.update.interval_cycles = 500;
      config.update.count = 8;
    }
    RouterSim sequential(small_table(), config);
    const std::string oracle =
        sequential.run_workload(small_profile()).to_json();
    RouterConfig sharded_config = config;
    sharded_config.execution = RouterConfig::ExecutionMode::kSharded;
    sharded_config.threads = 8;
    RouterSim sharded(small_table(), sharded_config);
    for (int i = 0; i < 25; ++i) {
      ASSERT_EQ(sharded.run_workload(small_profile()).to_json(), oracle)
          << "iteration " << i;
    }
  }
}

TEST(ShardedEngine, Ipv6CoreIsByteIdenticalToo) {
  // The engine lives in the family-generic core; exercise the 128-bit
  // instantiation once.
  net::TableGen6Config table_config;
  table_config.size = 3'000;
  table_config.seed = 702;
  const net::RouteTable6 table = net::generate_table6(table_config);
  RouterConfig sequential = scenario_config(4, Scenario::kBaseline);
  RouterConfig sharded = sequential;
  sharded.execution = RouterConfig::ExecutionMode::kSharded;
  sharded.threads = 4;
  RouterSim6 a(table, sequential);
  RouterSim6 b(table, sharded);
  EXPECT_EQ(b.run_workload(small_profile(), true).to_json(),
            a.run_workload(small_profile(), true).to_json());
}

TEST(ShardedEngine, EpochSpanningFullOutageIsByteIdentical) {
  // A full-run outage of one LC (its port never comes back) crosses every
  // lookahead epoch boundary, so the sharded engine keeps dropping that
  // port's traffic epoch after epoch while the other shards race ahead.
  // With replicas in place the survivors steer around the dead LC; the
  // result must still be byte-identical to the sequential oracle for both
  // address families.
  RouterConfig config = scenario_config(4, Scenario::kBaseline);
  config.fault.enabled = true;
  config.fault.outages.push_back(
      fabric::OutageWindow{/*port=*/1, /*start=*/0,
                           /*end=*/std::uint64_t{1} << 40});
  config.recovery.max_retries = 2;
  config.replication.replicas = 1;
  RouterConfig sharded = config;
  sharded.execution = RouterConfig::ExecutionMode::kSharded;
  sharded.threads = 8;
  {
    RouterSim a(small_table(), config);
    RouterSim b(small_table(), sharded);
    const std::string oracle = a.run_workload(small_profile(), true).to_json();
    EXPECT_EQ(b.run_workload(small_profile(), true).to_json(), oracle);
    EXPECT_NE(oracle.find("\"failover\""), std::string::npos);
  }
  {
    net::TableGen6Config table_config;
    table_config.size = 3'000;
    table_config.seed = 703;
    const net::RouteTable6 table = net::generate_table6(table_config);
    RouterSim6 a(table, config);
    RouterSim6 b(table, sharded);
    EXPECT_EQ(b.run_workload(small_profile(), true).to_json(),
              a.run_workload(small_profile(), true).to_json());
  }
}

TEST(ShardedEngine, PlannedShardsHonorsThreadCapAndLcClamp) {
  RouterConfig config = scenario_config(4, Scenario::kBaseline);
  EXPECT_EQ(RouterSim(small_table(), config).planned_shards(), 1)
      << "kSequential always runs solo";

  config.execution = RouterConfig::ExecutionMode::kSharded;
  config.threads = 2;
  EXPECT_EQ(RouterSim(small_table(), config).planned_shards(), 2);
  config.threads = 8;
  EXPECT_EQ(RouterSim(small_table(), config).planned_shards(), 4)
      << "clamped to num_lcs";
  config.threads = 0;
  EXPECT_GE(RouterSim(small_table(), config).planned_shards(), 1)
      << "0 = hardware concurrency, at least one";
}

TEST(ShardedEngine, PlannedShardsFallsBackToSoloForUnsupportedConfigs) {
  RouterConfig config = scenario_config(4, Scenario::kBaseline);
  config.execution = RouterConfig::ExecutionMode::kSharded;
  config.threads = 4;

  // Periodic whole-router cache flushes touch every LC from one event.
  RouterConfig flushing = config;
  flushing.flush_interval_cycles = 10'000;
  EXPECT_EQ(RouterSim(small_table(), flushing).planned_shards(), 1);

  // Live churn is parallel-safe on its own...
  RouterConfig churning = config;
  churning.update.interval_cycles = 2'000;
  churning.update.count = 10;
  EXPECT_EQ(RouterSim(small_table(), churning).planned_shards(), 4);
  // ...but not combined with verify (the oracle is read per packet while
  // injects mutate it) or fault injection (the degraded path reads it).
  EXPECT_EQ(RouterSim(small_table(), churning).planned_shards(/*verify=*/true),
            1);
  churning.fault.enabled = true;
  EXPECT_EQ(RouterSim(small_table(), churning).planned_shards(), 1);
}

}  // namespace
