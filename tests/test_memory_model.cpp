// Tests for the CRAM-lens memory-tier cost model: paper calibration (the
// flat 40/62-cycle constants fall out of the default tiers), spill
// placement, charge conservation, and the router integration that feeds
// the per-tier ledger audited by `spal_report --check`.
#include "core/memory_model.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "core/router_sim.h"
#include "net/table_gen.h"
#include "trie/dp_trie.h"
#include "trie/lulea_trie.h"

namespace {

using namespace spal;
using core::MemoryCounters;
using core::MemoryModel;
using core::MemoryModelConfig;
using core::MemoryTier;

net::RouteTable paper_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 701;
  return net::generate_table(config);
}

// --- Calibration: default tiers on a paper-sized table ---

// With the whole structure resident in the 2-cycle first tier, the model
// prices a lookup at 24 + 2 * accesses — the paper's flat constants for
// the observed access counts (~8 for Lulea => ~40, ~19 for DP => ~62).
TEST(MemoryModel, DefaultTiersReproducePaperConstants) {
  const net::RouteTable table = paper_table();
  const trie::LuleaTrie lulea(table);
  const trie::DpTrie dp(table);
  const MemoryModelConfig config;  // defaults: sram 2 MiB @ 2 cycles first
  const MemoryModel lulea_model(config, lulea.arenas());
  const MemoryModel dp_model(config, dp.arenas());
  // A paper-sized table fits the first tier entirely.
  for (const auto& p : lulea_model.placements()) EXPECT_EQ(p.tier, 0u);
  for (const auto& p : dp_model.placements()) EXPECT_EQ(p.tier, 0u);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 1'000; ++i) {
    const net::Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    trie::MemAccessCounter lc, dc;
    (void)lulea.lookup_counted(addr, lc);
    (void)dp.lookup_counted(addr, dc);
    EXPECT_EQ(lulea_model.lookup_cycles(lc), 24 + 2 * lc.total());
    EXPECT_EQ(dp_model.lookup_cycles(dc), 24 + 2 * dc.total());
  }
}

TEST(MemoryModel, DefaultTierTableMatchesDocumentedHierarchy) {
  const auto tiers = MemoryModelConfig::default_tiers();
  ASSERT_EQ(tiers.size(), 4u);
  EXPECT_EQ(tiers[0].name, "sram");
  EXPECT_EQ(tiers[0].capacity_bytes, std::uint64_t{2} << 20);
  EXPECT_EQ(tiers[0].access_cycles, 2u);
  EXPECT_EQ(tiers[1].name, "l2");
  EXPECT_EQ(tiers[2].name, "llc");
  EXPECT_EQ(tiers[3].name, "dram");
  EXPECT_EQ(tiers[3].capacity_bytes, 0u);  // unbounded backing tier
  EXPECT_EQ(tiers[3].access_cycles, 70u);
}

// --- Placement: arenas pack whole, hottest first, by cumulative offset ---

TEST(MemoryModel, ArenasSpillByCumulativeEndOffset) {
  MemoryModelConfig config;
  config.enabled = true;
  config.tiers = {{"fast", 100, 1}, {"slow", 0, 10}};
  const std::vector<trie::ArenaSpan> arenas = {{"hot", 60}, {"cold", 60}};
  const MemoryModel model(config, arenas);
  ASSERT_EQ(model.placements().size(), 2u);
  // "hot" ends at offset 60 <= 100: resident. "cold" would end at 120:
  // the whole arena spills (arenas are never split across tiers).
  EXPECT_EQ(model.placements()[0].tier, 0u);
  EXPECT_EQ(model.placements()[1].tier, 1u);
  EXPECT_EQ(model.placed_bytes(), 120u);
}

TEST(MemoryModel, SpilledArenaChargesSlowTierCycles) {
  MemoryModelConfig config;
  config.matching_overhead_cycles = 5;
  config.tiers = {{"fast", 100, 1}, {"slow", 0, 10}};
  const std::vector<trie::ArenaSpan> arenas = {{"hot", 60}, {"cold", 60}};
  const MemoryModel model(config, arenas);
  trie::MemAccessCounter counter;
  counter.record_arena(0, 3);  // resident arena
  counter.record_arena(1, 2);  // spilled arena
  EXPECT_EQ(model.lookup_cycles(counter), 5u + 3u * 1u + 2u * 10u);
}

TEST(MemoryModel, ChargeAccumulatesPerTierCounters) {
  MemoryModelConfig config;
  config.matching_overhead_cycles = 5;
  config.tiers = {{"fast", 100, 1}, {"slow", 0, 10}};
  const MemoryModel model(config, {{"hot", 60}, {"cold", 60}});
  MemoryCounters out;
  trie::MemAccessCounter counter;
  counter.record_arena(0, 3);
  counter.record_arena(1, 2);
  const std::uint64_t first = model.charge(counter, out);
  const std::uint64_t second = model.charge(counter, out);
  EXPECT_EQ(first, second);
  EXPECT_EQ(out.lookups, 2u);
  EXPECT_EQ(out.tier_accesses[0], 6u);
  EXPECT_EQ(out.tier_accesses[1], 4u);
  EXPECT_EQ(out.tier_cycles[0], 6u);
  EXPECT_EQ(out.tier_cycles[1], 40u);
  // Conservation: charged == lookups * overhead + per-tier cycles.
  EXPECT_EQ(out.charged_cycles,
            out.lookups * 5u + out.tier_cycles[0] + out.tier_cycles[1]);
}

TEST(MemoryModel, RejectsEmptyAndOversizedTierLists) {
  const std::vector<trie::ArenaSpan> arenas = {{"a", 16}};
  MemoryModelConfig empty;
  empty.tiers.clear();
  EXPECT_THROW(MemoryModel(empty, arenas), std::invalid_argument);
  MemoryModelConfig oversized;
  oversized.tiers.assign(core::kMaxMemoryTiers + 1, {"t", 0, 1});
  EXPECT_THROW(MemoryModel(oversized, arenas), std::invalid_argument);
}

// --- Router integration: the ledger spal_report audits ---

TEST(MemoryModelRouter, EnabledRunKeepsConservationLedger) {
  const net::RouteTable table = paper_table();
  core::RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 2'000;
  config.memory.enabled = true;
  core::RouterSim router(table, config);
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 1'000;
  const core::RouterResult result =
      router.run_workload(profile, /*verify=*/true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  const core::MemoryStats& mem = result.memory;
  ASSERT_TRUE(mem.enabled);
  EXPECT_EQ(mem.lookups, result.fe_lookups);
  EXPECT_EQ(mem.matching_cycles, mem.lookups * mem.matching_overhead_cycles);
  std::uint64_t tier_cycles = 0, placed = 0;
  for (const auto& tier : mem.tiers) {
    tier_cycles += tier.cycles;
    placed += tier.placed_bytes;
  }
  EXPECT_EQ(mem.charged_cycles, mem.matching_cycles + tier_cycles);
  EXPECT_EQ(placed, mem.storage_bytes);
  std::uint64_t busy = 0;
  for (const auto& lc : result.per_lc) busy += lc.fe_busy_cycles;
  EXPECT_EQ(busy, mem.charged_cycles + result.update.update_cost_cycles);
  EXPECT_NE(result.to_json().find("\"memory\""), std::string::npos);
}

// A disabled model must leave the report schema untouched — existing-size
// figures stay byte-identical to a build without the model.
TEST(MemoryModelRouter, DisabledRunEmitsNoMemoryObject) {
  const net::RouteTable table = paper_table();
  core::RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 1'000;
  core::RouterSim router(table, config);
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 500;
  const core::RouterResult result = router.run_workload(profile);
  EXPECT_FALSE(result.memory.enabled);
  EXPECT_EQ(result.to_json().find("\"memory\""), std::string::npos);
}

// Tight SRAM budgets must price lookups strictly higher than roomy ones —
// the tier-curve cliff bench_scale sweeps at full scale.
TEST(MemoryModelRouter, TightSramBudgetRaisesMeanLatency) {
  const net::RouteTable table = paper_table();
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 1'000;
  auto mean_with_budget = [&](std::uint64_t budget) {
    core::RouterConfig config = core::spal_default_config(4);
    config.packets_per_lc = 2'000;
    config.memory.enabled = true;
    config.memory.tiers = {{"sram", budget, 2}, {"dram", 0, 70}};
    core::RouterSim router(table, config);
    const core::RouterResult result = router.run_workload(profile);
    return result.memory.charged_cycles /
           static_cast<double>(result.memory.lookups);
  };
  // 1 KiB forces every arena into DRAM; 16 MiB keeps everything in SRAM.
  EXPECT_GT(mean_with_budget(1024), mean_with_budget(std::uint64_t{16} << 20));
}

}  // namespace
