#include "trace/trace_gen.h"

#include <gtest/gtest.h>

#include <set>

#include "net/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using namespace spal;
using trace::TraceGenerator;
using trace::WorkloadProfile;

net::RouteTable test_table() {
  net::TableGenConfig config;
  config.size = 5'000;
  config.seed = 101;
  return net::generate_table(config);
}

TEST(TraceGen, GeneratesRequestedCount) {
  const TraceGenerator gen(trace::profile_d75(), test_table());
  EXPECT_EQ(gen.generate(0, 1'000).size(), 1'000u);
  EXPECT_EQ(gen.generate(0, 0).size(), 0u);
}

TEST(TraceGen, DeterministicPerLc) {
  const TraceGenerator gen(trace::profile_d75(), test_table());
  EXPECT_EQ(gen.generate(3, 500), gen.generate(3, 500));
}

TEST(TraceGen, DifferentLcsGetDifferentStreams) {
  const TraceGenerator gen(trace::profile_d75(), test_table());
  EXPECT_NE(gen.generate(0, 500), gen.generate(1, 500));
}

TEST(TraceGen, SharedFlowPopulationAcrossLcs) {
  // Hot destinations recur across LCs — the property SPAL's remote-result
  // caching depends on.
  const TraceGenerator gen(trace::profile_d75(), test_table());
  const auto a = gen.generate(0, 5'000);
  const auto b = gen.generate(1, 5'000);
  std::set<std::uint32_t> set_a;
  for (const auto addr : a) set_a.insert(addr.value());
  std::size_t shared = 0;
  for (const auto addr : b) {
    if (set_a.count(addr.value()) > 0) ++shared;
  }
  EXPECT_GT(static_cast<double>(shared), 0.3 * static_cast<double>(b.size()));
}

TEST(TraceGen, EveryDestinationMatchesTheTable) {
  const net::RouteTable table = test_table();
  const trie::BinaryTrie oracle(table);
  const TraceGenerator gen(trace::profile_l92_0(), table);
  for (const auto addr : gen.generate(0, 2'000)) {
    EXPECT_NE(oracle.lookup(addr), net::kNoRoute) << addr.to_string();
  }
}

TEST(TraceGen, BurstinessProducesRepeats) {
  WorkloadProfile profile = trace::profile_d75();
  profile.burst_mean = 8.0;
  const TraceGenerator gen(profile, test_table());
  const auto stream = gen.generate(0, 10'000);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    if (stream[i] == stream[i - 1]) ++repeats;
  }
  // Mean train length 8 => ~7/8 of packets repeat the previous destination.
  EXPECT_GT(static_cast<double>(repeats), 0.8 * static_cast<double>(stream.size()));
}

TEST(TraceGen, BurstMeanOneNeverForcesRepeatStructure) {
  WorkloadProfile profile = trace::profile_d75();
  profile.burst_mean = 1.0;
  const TraceGenerator gen(profile, test_table());
  const auto stream = gen.generate(0, 10'000);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    if (stream[i] == stream[i - 1]) ++repeats;
  }
  // Repeats now only happen via Zipf re-draws of hot flows.
  EXPECT_LT(static_cast<double>(repeats), 0.5 * static_cast<double>(stream.size()));
}

TEST(TraceGen, ZipfHeadCarriesTraffic) {
  // The Estan-Varghese-style skew the paper cites: a small fraction of
  // flows carries a large fraction of packets.
  const TraceGenerator gen(trace::profile_d75(), test_table());
  const auto stats = trace::analyze_trace(gen.generate(0, 100'000));
  const std::size_t head = std::max<std::size_t>(1, stats.distinct / 10);
  EXPECT_GT(stats.concentration(head), 0.6);
}

TEST(TraceGen, EmptyTableYieldsEmptyStream) {
  const TraceGenerator gen(trace::profile_d75(), net::RouteTable{});
  EXPECT_TRUE(gen.generate(0, 100).empty());
}

TEST(TraceGen, AllProfilesAreDistinctAndNamed) {
  const auto profiles = trace::all_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  EXPECT_EQ(profiles[0].name, "D_75");
  EXPECT_EQ(profiles[1].name, "D_81");
  EXPECT_EQ(profiles[2].name, "L_92-0");
  EXPECT_EQ(profiles[3].name, "L_92-1");
  EXPECT_EQ(profiles[4].name, "B_L");
  std::set<std::uint64_t> seeds;
  for (const auto& p : profiles) seeds.insert(p.seed);
  EXPECT_EQ(seeds.size(), 5u);
}

TEST(AnalyzeTrace, CountsDistinctAndMass) {
  std::vector<net::Ipv4Addr> stream;
  for (int i = 0; i < 90; ++i) stream.emplace_back(1u);
  for (int i = 0; i < 10; ++i) stream.emplace_back(static_cast<std::uint32_t>(100 + i));
  const auto stats = trace::analyze_trace(stream);
  EXPECT_EQ(stats.packets, 100u);
  EXPECT_EQ(stats.distinct, 11u);
  EXPECT_DOUBLE_EQ(stats.concentration(1), 0.9);
  EXPECT_DOUBLE_EQ(stats.concentration(11), 1.0);
  EXPECT_DOUBLE_EQ(stats.concentration(999), 1.0);
}

TEST(AnalyzeTrace, EmptyStream) {
  const auto stats = trace::analyze_trace({});
  EXPECT_EQ(stats.packets, 0u);
  EXPECT_EQ(stats.distinct, 0u);
}

}  // namespace
