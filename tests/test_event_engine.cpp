// Engine-equivalence tests: the CalendarQueue must pop in exactly the same
// (time, insertion-seq) order as the binary-heap EventQueue — including
// same-cycle bursts, far-future overflow, past schedules, and across
// automatic resizes — and a RouterSim run must produce bit-identical
// results under either engine.
#include "sim/calendar_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/table_gen.h"
#include "sim/engine.h"

namespace {

using namespace spal;

struct Payload {
  std::uint64_t id;
  bool operator==(const Payload&) const = default;
};

using Heap = sim::EventQueue<Payload>;
using Calendar = sim::CalendarQueue<Payload>;

/// Drives both engines through the same schedule/pop tape and asserts the
/// pop sequences are identical (time and payload).
class Tandem {
 public:
  explicit Tandem(std::size_t bucket_hint = 0) : calendar_(bucket_hint) {}

  void schedule(std::uint64_t time) {
    heap_.schedule(time, Payload{next_id_});
    calendar_.schedule(time, Payload{next_id_});
    ++next_id_;
  }

  void pop_and_check() {
    ASSERT_EQ(heap_.empty(), calendar_.empty());
    ASSERT_FALSE(heap_.empty());
    ASSERT_EQ(heap_.next_time(), calendar_.next_time());
    const auto [heap_time, heap_event] = heap_.pop();
    const auto [cal_time, cal_event] = calendar_.pop();
    ASSERT_EQ(heap_time, cal_time);
    ASSERT_EQ(heap_event, cal_event);
    ASSERT_EQ(heap_.size(), calendar_.size());
    last_popped_ = heap_time;
  }

  void drain_and_check() {
    while (!heap_.empty()) pop_and_check();
    ASSERT_TRUE(calendar_.empty());
  }

  std::uint64_t last_popped() const { return last_popped_; }
  std::size_t size() const { return heap_.size(); }

 private:
  Heap heap_;
  Calendar calendar_;
  std::uint64_t next_id_ = 0;
  std::uint64_t last_popped_ = 0;
};

#ifndef NDEBUG
using EmptyQueueDeathTest = testing::Test;

TEST(EmptyQueueDeathTest, NextTimeAndPopAssertOnEmptyQueues) {
  // next_time()/pop() on an empty queue is a contract violation; in debug
  // builds the assert guards must fire instead of returning garbage.
  EXPECT_DEATH({ Heap q; (void)q.next_time(); }, "empty");
  EXPECT_DEATH({ Heap q; (void)q.pop(); }, "empty");
  EXPECT_DEATH({ Calendar q; (void)q.next_time(); }, "empty");
  EXPECT_DEATH({ Calendar q; (void)q.pop(); }, "empty");
  EXPECT_DEATH(
      {
        Heap q;
        q.schedule(5, Payload{1});
        (void)q.pop();
        (void)q.pop();  // one past the end
      },
      "empty");
}
#endif  // NDEBUG

TEST(CalendarQueueTest, FifoWithinOneCycle) {
  Tandem tandem;
  for (int i = 0; i < 100; ++i) tandem.schedule(7);
  tandem.drain_and_check();
}

TEST(CalendarQueueTest, SameCycleBurstsInterleavedWithPops) {
  Tandem tandem;
  std::mt19937_64 rng(1);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t t = tandem.last_popped() + rng() % 16;
    // Burst several events onto one cycle, some while that cycle drains.
    for (int i = 0; i < 5; ++i) tandem.schedule(t);
    tandem.pop_and_check();
    for (int i = 0; i < 3; ++i) tandem.schedule(tandem.last_popped());
    tandem.pop_and_check();
  }
  tandem.drain_and_check();
}

TEST(CalendarQueueTest, FarFutureEventsOverflowCorrectly) {
  Tandem tandem;
  std::mt19937_64 rng(2);
  for (int i = 0; i < 2000; ++i) {
    // Bimodal: near events plus far-future ones well beyond any wheel lap.
    tandem.schedule(i % 3 == 0 ? rng() % 512 : 1'000'000'000 + rng() % 4096);
  }
  tandem.drain_and_check();
}

TEST(CalendarQueueTest, PastSchedulesStillPopInOrder) {
  Tandem tandem;
  for (int i = 0; i < 64; ++i) tandem.schedule(1000 + i);
  for (int i = 0; i < 32; ++i) tandem.pop_and_check();
  // The heap accepts times below the last popped time; the calendar must
  // reproduce the same (earliest-first) recovery order.
  for (int i = 0; i < 16; ++i) tandem.schedule(i % 7);
  tandem.drain_and_check();
}

TEST(CalendarQueueTest, ResizeUnderLoadKeepsOrder) {
  // Start from the smallest wheel and push far past it so both the
  // bucket-count growth and the width rebuild trigger mid-run.
  Tandem tandem(/*bucket_hint=*/1);
  std::mt19937_64 rng(3);
  for (int i = 0; i < 40'000; ++i) tandem.schedule(rng() % 100'000);
  for (int i = 0; i < 10'000; ++i) tandem.pop_and_check();
  for (int i = 0; i < 40'000; ++i) {
    tandem.schedule(tandem.last_popped() + rng() % 1'000'000);
  }
  tandem.drain_and_check();
}

TEST(CalendarQueueTest, RandomizedPropertyTape) {
  // Mixed random tape across several seeds: schedules clustered near the
  // frontier, same-cycle bursts, far-future spikes, interleaved pops.
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    Tandem tandem;
    std::mt19937_64 rng(seed);
    for (int step = 0; step < 30'000; ++step) {
      const std::uint64_t kind = rng() % 10;
      if (kind < 5) {
        tandem.schedule(tandem.last_popped() + rng() % 300);
      } else if (kind == 5) {
        const std::uint64_t t = tandem.last_popped() + rng() % 50;
        for (int i = 0; i < 4; ++i) tandem.schedule(t);
      } else if (kind == 6) {
        tandem.schedule(tandem.last_popped() + 1'000'000 + rng() % 100'000);
      } else if (tandem.size() > 0) {
        tandem.pop_and_check();
      }
    }
    tandem.drain_and_check();
  }
}

TEST(CalendarQueueTest, ReserveMatchesUnreserved) {
  // reserve() only changes geometry, never order.
  Calendar reserved;
  reserved.reserve(500'000);
  Calendar plain;
  std::mt19937_64 rng(4);
  std::vector<std::uint64_t> times;
  for (int i = 0; i < 5'000; ++i) times.push_back(rng() % 1'000'000);
  for (std::size_t i = 0; i < times.size(); ++i) {
    reserved.schedule(times[i], Payload{i});
    plain.schedule(times[i], Payload{i});
  }
  while (!plain.empty()) {
    ASSERT_FALSE(reserved.empty());
    const auto a = plain.pop();
    const auto b = reserved.pop();
    ASSERT_EQ(a.first, b.first);
    ASSERT_EQ(a.second, b.second);
  }
  ASSERT_TRUE(reserved.empty());
}

// --- Router-level equivalence -------------------------------------------

net::RouteTable small_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 202;
  return net::generate_table(config);
}

trace::WorkloadProfile small_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

void expect_identical(const core::RouterResult& heap,
                      const core::RouterResult& calendar) {
  EXPECT_EQ(heap.resolved_packets, calendar.resolved_packets);
  EXPECT_EQ(heap.verify_mismatches, 0u);
  EXPECT_EQ(calendar.verify_mismatches, 0u);
  EXPECT_EQ(heap.makespan_cycles, calendar.makespan_cycles);
  EXPECT_EQ(heap.fe_lookups, calendar.fe_lookups);
  EXPECT_EQ(heap.remote_requests, calendar.remote_requests);
  // Latency statistics must match exactly, not just on the mean.
  EXPECT_EQ(heap.latency.count(), calendar.latency.count());
  EXPECT_EQ(heap.latency.total_cycles(), calendar.latency.total_cycles());
  EXPECT_EQ(heap.latency.worst_cycles(), calendar.latency.worst_cycles());
  ASSERT_EQ(heap.per_lc_latency.size(), calendar.per_lc_latency.size());
  for (std::size_t lc = 0; lc < heap.per_lc_latency.size(); ++lc) {
    EXPECT_EQ(heap.per_lc_latency[lc].total_cycles(),
              calendar.per_lc_latency[lc].total_cycles());
  }
  // Cache and fabric behaviour are downstream of event order: identical
  // order implies identical counters.
  EXPECT_EQ(heap.cache_total.probes, calendar.cache_total.probes);
  EXPECT_EQ(heap.cache_total.hits, calendar.cache_total.hits);
  EXPECT_EQ(heap.cache_total.misses, calendar.cache_total.misses);
  EXPECT_EQ(heap.cache_total.evictions, calendar.cache_total.evictions);
  EXPECT_EQ(heap.fabric.messages, calendar.fabric.messages);
  EXPECT_EQ(heap.fabric.total_queueing_cycles,
            calendar.fabric.total_queueing_cycles);
  EXPECT_EQ(heap.updates_applied, calendar.updates_applied);
}

TEST(EngineEquivalenceTest, RouterSimBitIdenticalAcrossEngines) {
  const net::RouteTable table = small_table();
  for (const int psi : {1, 4}) {
    core::RouterConfig config = core::spal_default_config(psi);
    config.packets_per_lc = 4'000;
    config.cache.blocks = 512;

    config.engine = sim::EngineKind::kHeap;
    core::RouterSim heap_router(table, config);
    const auto heap_result =
        heap_router.run_workload(small_profile(), /*verify=*/true);

    config.engine = sim::EngineKind::kCalendar;
    core::RouterSim calendar_router(table, config);
    const auto calendar_result =
        calendar_router.run_workload(small_profile(), /*verify=*/true);

    expect_identical(heap_result, calendar_result);
  }
}

TEST(EngineEquivalenceTest, RouterSimIdenticalWithTableUpdates) {
  // Periodic cache flushes/invalidations stress waiting-list churn.
  const net::RouteTable table = small_table();
  core::RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 4'000;
  config.cache.blocks = 512;
  config.flush_interval_cycles = 2'000;
  config.update_policy = core::RouterConfig::UpdatePolicy::kSelectiveInvalidate;

  config.engine = sim::EngineKind::kHeap;
  core::RouterSim heap_router(table, config);
  const auto heap_result =
      heap_router.run_workload(small_profile(), /*verify=*/true);

  config.engine = sim::EngineKind::kCalendar;
  core::RouterSim calendar_router(table, config);
  const auto calendar_result =
      calendar_router.run_workload(small_profile(), /*verify=*/true);

  expect_identical(heap_result, calendar_result);
  EXPECT_GT(heap_result.updates_applied, 0u);
}

TEST(EngineEquivalenceTest, RouterSim6BitIdenticalAcrossEngines) {
  net::TableGen6Config table_config;
  table_config.size = 1'500;
  table_config.seed = 203;
  const net::RouteTable6 table = net::generate_table6(table_config);

  core::RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 2'000;
  config.cache.blocks = 512;

  config.engine = sim::EngineKind::kHeap;
  core::RouterSim6 heap_router(table, config);
  const auto heap_result =
      heap_router.run_workload(small_profile(), /*verify=*/true);

  config.engine = sim::EngineKind::kCalendar;
  core::RouterSim6 calendar_router(table, config);
  const auto calendar_result =
      calendar_router.run_workload(small_profile(), /*verify=*/true);

  expect_identical(heap_result, calendar_result);
}

}  // namespace
