// IPv6 extension tests (paper Sec. 6): 128-bit prefixes, table generation,
// binary-trie LPM, and SPAL partitioning over v6 tables.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "net/prefix6.h"
#include "partition/partition6.h"
#include "trie/binary_trie6.h"

namespace {

using namespace spal;
using net::Ipv6Addr;
using net::Prefix6;
using net::RouteTable6;

Prefix6 p6(std::uint64_t hi, std::uint64_t lo, int len) {
  return Prefix6(Ipv6Addr{hi, lo}, len);
}

TEST(Prefix6, MasksHostBitsInHighHalf) {
  const Prefix6 prefix = p6(0x20010DB8FFFFFFFFULL, ~0ULL, 32);
  EXPECT_EQ(prefix.address().hi(), 0x20010DB800000000ULL);
  EXPECT_EQ(prefix.address().lo(), 0ULL);
}

TEST(Prefix6, MasksHostBitsInLowHalf) {
  const Prefix6 prefix = p6(0x20010DB800000000ULL, 0xFFFFFFFFFFFFFFFFULL, 96);
  EXPECT_EQ(prefix.address().lo(), 0xFFFFFFFF00000000ULL);
}

TEST(Prefix6, LengthBoundaries) {
  EXPECT_EQ(p6(~0ULL, ~0ULL, 0).address(), Ipv6Addr(0, 0));
  EXPECT_EQ(p6(~0ULL, ~0ULL, 64).address(), Ipv6Addr(~0ULL, 0));
  EXPECT_EQ(p6(~0ULL, ~0ULL, 128).address(), Ipv6Addr(~0ULL, ~0ULL));
}

TEST(Prefix6, TriStateBits) {
  const Prefix6 prefix = p6(0x8000000000000000ULL, 0, 3);
  EXPECT_EQ(prefix.bit(0), net::PrefixBit::kOne);
  EXPECT_EQ(prefix.bit(1), net::PrefixBit::kZero);
  EXPECT_EQ(prefix.bit(3), net::PrefixBit::kStar);
  EXPECT_EQ(prefix.bit(127), net::PrefixBit::kStar);
}

TEST(Prefix6, MatchesAcrossTheHalfBoundary) {
  const Prefix6 prefix = p6(0x20010DB800000000ULL, 0xAB00000000000000ULL, 72);
  EXPECT_TRUE(prefix.matches(Ipv6Addr{0x20010DB800000000ULL, 0xAB12345678ULL << 24}));
  EXPECT_FALSE(prefix.matches(Ipv6Addr{0x20010DB800000000ULL, 0xAC00000000000000ULL}));
  EXPECT_FALSE(prefix.matches(Ipv6Addr{0x20010DB900000000ULL, 0xAB00000000000000ULL}));
}

TEST(Prefix6, CoversNesting) {
  EXPECT_TRUE(p6(0x2001000000000000ULL, 0, 16).covers(p6(0x20010DB800000000ULL, 0, 32)));
  EXPECT_FALSE(p6(0x20010DB800000000ULL, 0, 32).covers(p6(0x2001000000000000ULL, 0, 16)));
}

TEST(RouteTable6, AddDedupAndLookup) {
  RouteTable6 table;
  table.add(p6(0x2001000000000000ULL, 0, 16), 1);
  table.add(p6(0x20010DB800000000ULL, 0, 32), 2);
  table.add(p6(0x20010DB800000000ULL, 0, 32), 3);  // replaces
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.lookup_linear(Ipv6Addr{0x20010DB800000001ULL, 5}), 3u);
  EXPECT_EQ(table.lookup_linear(Ipv6Addr{0x2001FFFF00000000ULL, 0}), 1u);
  EXPECT_EQ(table.lookup_linear(Ipv6Addr{0x3001000000000000ULL, 0}), net::kNoRoute);
}

TEST(Prefix6, ParseRoundTripsToString) {
  for (const Prefix6 prefix :
       {p6(0x20010DB800000000ULL, 0, 32), p6(0x2000000000000000ULL, 0, 3),
        p6(0x20010DB8000000FFULL, 0xFFFF000000000000ULL, 80),
        p6(~0ULL, ~0ULL, 128)}) {
    const auto parsed = Prefix6::parse(prefix.to_string());
    ASSERT_TRUE(parsed.has_value()) << prefix.to_string();
    EXPECT_EQ(*parsed, prefix);
  }
}

TEST(Prefix6, ParseRejectsMalformed) {
  EXPECT_FALSE(Prefix6::parse("2001:db8::/32").has_value());  // compressed form
  EXPECT_FALSE(Prefix6::parse("2001:0db8:0000:0000:0000:0000:0000:0001").has_value());
  EXPECT_FALSE(Prefix6::parse("2001:0db8:0000:0000:0000:0000:0000:0001/129").has_value());
  EXPECT_FALSE(Prefix6::parse("2001:0db8:0000:0000:0000:0000:0001/64").has_value());
  EXPECT_FALSE(Prefix6::parse("").has_value());
}

TEST(RouteTable6, SaveLoadRoundTrip) {
  net::TableGen6Config config;
  config.size = 500;
  config.seed = 77;
  const RouteTable6 table = net::generate_table6(config);
  std::stringstream stream;
  table.save(stream);
  const auto loaded = RouteTable6::load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, table);
}

TEST(RouteTable6, LoadRejectsMalformed) {
  std::stringstream bad("2001:0db8/32 1\n");
  EXPECT_FALSE(RouteTable6::load(bad).has_value());
}

TEST(TableGen6, SizeSeedAndSpace) {
  net::TableGen6Config config;
  config.size = 5'000;
  config.seed = 3;
  const RouteTable6 table = net::generate_table6(config);
  EXPECT_EQ(table.size(), 5'000u);
  EXPECT_EQ(table, net::generate_table6(config));
  // All prefixes live in global unicast 2000::/3.
  for (const net::RouteEntry6& e : table.entries()) {
    EXPECT_EQ(e.prefix.address().hi() >> 61, 1u) << e.prefix.to_string();
  }
}

TEST(TableGen6, Slash48Dominates) {
  net::TableGen6Config config;
  config.size = 20'000;
  config.seed = 4;
  const auto hist = net::generate_table6(config).length_histogram();
  for (int len = 0; len <= 128; ++len) {
    if (len != 48) {
      EXPECT_GE(hist[48], hist[static_cast<std::size_t>(len)]) << len;
    }
  }
}

TEST(TableGen6, RandomAddressStaysInside) {
  std::mt19937_64 rng(1);
  const Prefix6 prefix = p6(0x20010DB800000000ULL, 0, 48);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(prefix.matches(net::random_address_in6(prefix, rng)));
  }
}

TEST(BinaryTrie6, AgreesWithLinearOracle) {
  net::TableGen6Config config;
  config.size = 3'000;
  config.seed = 5;
  const RouteTable6 table = net::generate_table6(config);
  const trie::BinaryTrie6 trie(table);
  std::mt19937_64 rng(6);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 2'000; ++i) {
    const auto addr =
        net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(trie.lookup(addr), table.lookup_linear(addr));
  }
}

TEST(BinaryTrie6, CountedMatchesPlain) {
  RouteTable6 table;
  table.add(p6(0x20010DB800000000ULL, 0, 32), 1);
  const trie::BinaryTrie6 trie(table);
  trie::MemAccessCounter counter;
  const Ipv6Addr addr{0x20010DB800000000ULL, 7};
  EXPECT_EQ(trie.lookup_counted(addr, counter), trie.lookup(addr));
  EXPECT_EQ(counter.total(), 33u);  // root + 32 levels
}

TEST(Partition6, BitStatsCountTriState) {
  RouteTable6 table;
  table.add(p6(0x2000000000000000ULL, 0, 4), 1);  // bit 3 = 0
  table.add(p6(0x3000000000000000ULL, 0, 4), 2);  // bit 3 = 1
  table.add(p6(0x2000000000000000ULL, 0, 3), 3);  // bit 3 = *
  const auto stats = partition::compute_bit_stats6(table.entries(), 3);
  EXPECT_EQ(stats.phi0, 1u);
  EXPECT_EQ(stats.phi1, 1u);
  EXPECT_EQ(stats.phi_star, 1u);
}

class Partition6InvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(Partition6InvariantTest, HomeLookupEqualsFullLookup) {
  const int num_lcs = GetParam();
  net::TableGen6Config config;
  config.size = 4'000;
  config.seed = 7;
  const RouteTable6 table = net::generate_table6(config);
  const partition::RotPartition6 rot(table, num_lcs);
  std::vector<trie::BinaryTrie6> tries;
  tries.reserve(static_cast<std::size_t>(num_lcs));
  for (int lc = 0; lc < num_lcs; ++lc) tries.emplace_back(rot.table_of(lc));
  const trie::BinaryTrie6 oracle(table);
  std::mt19937_64 rng(8);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 3'000; ++i) {
    const auto addr =
        net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    const int home = rot.home_of(addr);
    ASSERT_EQ(tries[static_cast<std::size_t>(home)].lookup(addr), oracle.lookup(addr))
        << "psi=" << num_lcs;
  }
}

INSTANTIATE_TEST_SUITE_P(PsiSweep, Partition6InvariantTest,
                         ::testing::Values(2, 3, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "psi_" + std::to_string(info.param);
                         });

TEST(Partition6, ShrinksPerLcTables) {
  net::TableGen6Config config;
  config.size = 20'000;
  config.seed = 9;
  const RouteTable6 table = net::generate_table6(config);
  const partition::RotPartition6 rot(table, 16);
  for (const std::size_t size : rot.partition_sizes()) {
    EXPECT_LT(static_cast<double>(size), 0.25 * static_cast<double>(table.size()));
  }
}

TEST(Partition6, ControlBitsStayLowForV6Tables) {
  // /48-heavy tables make bits past 48 mostly "*"; Criterion (1) must keep
  // the chosen bits well below that.
  net::TableGen6Config config;
  config.size = 20'000;
  config.seed = 10;
  const RouteTable6 table = net::generate_table6(config);
  for (const int bit : partition::select_control_bits6(table, 4)) {
    EXPECT_LT(bit, 48);
  }
}

TEST(Partition6, SramReductionExceedsIpv4Ratio) {
  // The paper's Sec. 4 remark: the per-LC storage reduction is much larger
  // under IPv6 (tries are several times bigger, and partitioning removes
  // the same fraction of a bigger structure).
  net::TableGen6Config config;
  config.size = 20'000;
  config.seed = 11;
  const RouteTable6 table = net::generate_table6(config);
  const trie::BinaryTrie6 whole(table);
  const partition::RotPartition6 rot(table, 4);
  for (int lc = 0; lc < 4; ++lc) {
    const trie::BinaryTrie6 part(rot.table_of(lc));
    EXPECT_LT(static_cast<double>(part.storage_bytes()),
              0.55 * static_cast<double>(whole.storage_bytes()));
  }
}

}  // namespace
