#include "fabric/fabric.h"
#include "fabric/queues.h"

#include <gtest/gtest.h>

namespace {

using namespace spal;
using fabric::BoundedQueue;
using fabric::Fabric;
using fabric::FabricConfig;

TEST(FabricStages, SingleStageUpToRadix) {
  EXPECT_EQ(fabric::fabric_stages(1, 16), 1);
  EXPECT_EQ(fabric::fabric_stages(16, 16), 1);
  EXPECT_EQ(fabric::fabric_stages(2, 16), 1);
}

TEST(FabricStages, MultistageGrowth) {
  EXPECT_EQ(fabric::fabric_stages(17, 16), 2);
  EXPECT_EQ(fabric::fabric_stages(256, 16), 2);
  EXPECT_EQ(fabric::fabric_stages(257, 16), 3);
  EXPECT_EQ(fabric::fabric_stages(64, 8), 2);
}

TEST(FabricStages, RejectsBadArguments) {
  EXPECT_THROW(fabric::fabric_stages(0, 16), std::invalid_argument);
  EXPECT_THROW(fabric::fabric_stages(4, 1), std::invalid_argument);
}

TEST(FabricLatency, PaperSizedRouterIsTwoCycles) {
  // ψ <= 16 with a 16-port crossbar: one stage, ~10 ns = 2 cycles of 5 ns.
  FabricConfig config;
  config.ports = 16;
  EXPECT_DOUBLE_EQ(fabric::fabric_latency_cycles(config), 2.0);
}

TEST(FabricLatency, GrowsWithStages) {
  FabricConfig small;
  small.ports = 8;
  FabricConfig large;
  large.ports = 64;
  EXPECT_LT(fabric::fabric_latency_cycles(small), fabric::fabric_latency_cycles(large));
}

TEST(Fabric, UncontendedDeliveryTakesLatency) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);
}

TEST(Fabric, EgressSerializesBackToBackMessages) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);
  EXPECT_EQ(fabric.deliver(0, 2, 100), 103u);  // same source, next cycle
  EXPECT_EQ(fabric.deliver(0, 3, 100), 104u);
}

TEST(Fabric, IngressSerializesConvergingMessages) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 3, 100), 102u);
  EXPECT_EQ(fabric.deliver(1, 3, 100), 103u);  // same destination port
  EXPECT_EQ(fabric.deliver(2, 3, 100), 104u);
}

TEST(Fabric, DistinctPortPairsDoNotInterfere) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);
  EXPECT_EQ(fabric.deliver(2, 3, 100), 102u);
}

TEST(Fabric, StatsTrackMessagesAndQueueing) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);
  (void)fabric.deliver(0, 1, 100);  // blocked one cycle on egress + ingress
  EXPECT_EQ(fabric.stats().messages, 2u);
  EXPECT_GT(fabric.stats().total_queueing_cycles, 0u);
}

TEST(Fabric, ResetClearsOccupancy) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);
  fabric.reset();
  EXPECT_EQ(fabric.stats().messages, 0u);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);  // no residual blocking
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CapacityRejectsOverflow) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.stats().rejected, 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.push(3));
}

TEST(BoundedQueue, UnboundedByDefault) {
  BoundedQueue<int> queue;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 1000u);
}

TEST(BoundedQueue, StatsTrackOccupancy) {
  BoundedQueue<int> queue;
  queue.push(1);
  queue.push(2);
  (void)queue.pop();
  queue.push(3);
  const auto& stats = queue.stats();
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(stats.dequeued, 1u);
  EXPECT_EQ(stats.max_occupancy, 2u);
}

TEST(BoundedQueue, FrontThrowsWhenEmpty) {
  BoundedQueue<int> queue;
  EXPECT_THROW(queue.front(), std::out_of_range);
  queue.push(5);
  EXPECT_EQ(queue.front(), 5);
}

}  // namespace
