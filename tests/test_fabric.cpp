#include "fabric/fabric.h"
#include "fabric/queues.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using namespace spal;
using fabric::BoundedQueue;
using fabric::Delivery;
using fabric::Egress;
using fabric::Fabric;
using fabric::FabricConfig;

TEST(FabricStages, SingleStageUpToRadix) {
  EXPECT_EQ(fabric::fabric_stages(1, 16), 1);
  EXPECT_EQ(fabric::fabric_stages(16, 16), 1);
  EXPECT_EQ(fabric::fabric_stages(2, 16), 1);
}

TEST(FabricStages, MultistageGrowth) {
  EXPECT_EQ(fabric::fabric_stages(17, 16), 2);
  EXPECT_EQ(fabric::fabric_stages(256, 16), 2);
  EXPECT_EQ(fabric::fabric_stages(257, 16), 3);
  EXPECT_EQ(fabric::fabric_stages(64, 8), 2);
}

TEST(FabricStages, RejectsBadArguments) {
  EXPECT_THROW(fabric::fabric_stages(0, 16), std::invalid_argument);
  EXPECT_THROW(fabric::fabric_stages(4, 1), std::invalid_argument);
}

TEST(FabricLatency, PaperSizedRouterIsTwoCycles) {
  // ψ <= 16 with a 16-port crossbar: one stage, ~10 ns = 2 cycles of 5 ns.
  FabricConfig config;
  config.ports = 16;
  EXPECT_DOUBLE_EQ(fabric::fabric_latency_cycles(config), 2.0);
}

TEST(FabricLatency, GrowsWithStages) {
  FabricConfig small;
  small.ports = 8;
  FabricConfig large;
  large.ports = 64;
  EXPECT_LT(fabric::fabric_latency_cycles(small), fabric::fabric_latency_cycles(large));
}

TEST(Fabric, UncontendedDeliveryTakesLatency) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);
}

TEST(Fabric, EgressSerializesBackToBackMessages) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);
  EXPECT_EQ(fabric.deliver(0, 2, 100), 103u);  // same source, next cycle
  EXPECT_EQ(fabric.deliver(0, 3, 100), 104u);
}

TEST(Fabric, IngressSerializesConvergingMessages) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 3, 100), 102u);
  EXPECT_EQ(fabric.deliver(1, 3, 100), 103u);  // same destination port
  EXPECT_EQ(fabric.deliver(2, 3, 100), 104u);
}

TEST(Fabric, DistinctPortPairsDoNotInterfere) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);
  EXPECT_EQ(fabric.deliver(2, 3, 100), 102u);
}

TEST(Fabric, StatsTrackMessagesAndQueueing) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);
  (void)fabric.deliver(0, 1, 100);  // blocked one cycle on egress + ingress
  EXPECT_EQ(fabric.stats().messages, 2u);
  EXPECT_GT(fabric.stats().total_queueing_cycles, 0u);
}

TEST(Fabric, ResetClearsOccupancy) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);
  fabric.reset();
  EXPECT_EQ(fabric.stats().messages, 0u);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);  // no residual blocking
}

TEST(Fabric, InjectionTimeMaySlipBackOneCycle) {
  // The router's reply path injects at `now` while the request path injects
  // at `now + 1`, so at one event time injections may arrive one cycle out
  // of order. That single-cycle slack is legal — per source port.
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);
  EXPECT_NO_THROW(fabric.deliver(0, 3, 99));
}

TEST(Fabric, InjectionTimeRegressionBeyondSlackThrows) {
  // The guard is per source port: each shard owns its LCs' egress ports and
  // hands out non-decreasing times for them, so only a same-port regression
  // is an ordering bug.
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);
  EXPECT_THROW(fabric.deliver(0, 3, 98), std::logic_error);
  // A different source port has its own clock: shards progress at different
  // simulated times, so cross-port regression is legal by design.
  EXPECT_NO_THROW(fabric.deliver(2, 3, 0));
  // reset() restarts the clocks, so earlier times are legal again.
  fabric.reset();
  EXPECT_NO_THROW(fabric.deliver(0, 3, 0));
}

TEST(Fabric, ReconfigureResizesPortState) {
  // Regression: reusing one Fabric across runs whose `ports` differ must
  // resize the occupancy and statistics vectors, not carry stale entries.
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 3, 100);
  ASSERT_EQ(fabric.stats().ports.size(), 4u);

  FabricConfig larger;
  larger.ports = 8;
  fabric.reconfigure(larger);
  EXPECT_EQ(fabric.stats().ports.size(), 8u);
  EXPECT_EQ(fabric.stats().messages, 0u);
  (void)fabric.deliver(7, 0, 10);  // the new ports exist and start idle
  EXPECT_EQ(fabric.stats().ports[7].sent, 1u);

  FabricConfig smaller;
  smaller.ports = 2;
  fabric.reconfigure(smaller);
  EXPECT_EQ(fabric.stats().ports.size(), 2u);
  EXPECT_EQ(fabric.deliver(0, 1, 100), 102u);  // no residual occupancy
}

TEST(Fabric, FailedReconfigureLeavesStateIntact) {
  FabricConfig config;
  config.ports = 4;
  Fabric fabric(config);
  (void)fabric.deliver(0, 1, 100);

  FabricConfig bad;
  bad.ports = 0;
  EXPECT_THROW(fabric.reconfigure(bad), std::invalid_argument);
  fabric::FaultConfig bad_faults;
  bad_faults.drop_probability = 2.0;
  EXPECT_THROW(fabric.reconfigure(config, bad_faults), std::invalid_argument);

  // The old configuration and statistics survive a rejected reconfigure.
  EXPECT_EQ(fabric.config().ports, 4);
  EXPECT_EQ(fabric.stats().messages, 1u);
  EXPECT_NO_THROW(fabric.deliver(2, 3, 100));
}

TEST(FabricFaults, ValidateRejectsBadConfigs) {
  fabric::FaultConfig faults;
  faults.drop_probability = 1.5;
  EXPECT_THROW(faults.validate(4), std::invalid_argument);
  faults = {};
  faults.jitter_probability = -0.1;
  EXPECT_THROW(faults.validate(4), std::invalid_argument);
  faults = {};
  faults.jitter_probability = 0.5;  // jitter enabled without a magnitude
  EXPECT_THROW(faults.validate(4), std::invalid_argument);
  faults = {};
  faults.outages.push_back({/*port=*/4, 0, 10});  // out of range for 4 ports
  EXPECT_THROW(faults.validate(4), std::invalid_argument);
  faults = {};
  faults.outages.push_back({/*port=*/1, 10, 10});  // empty window
  EXPECT_THROW(faults.validate(4), std::invalid_argument);
  // The fabric constructor applies the same validation.
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig bad;
  bad.drop_probability = -1.0;
  EXPECT_THROW(Fabric(config, bad), std::invalid_argument);
}

TEST(FabricFaults, DisabledLayerMatchesDeliverExactly) {
  // With enabled == false the configured probabilities are inert: no RNG
  // draw happens and try_deliver is bit-identical to deliver.
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.drop_probability = 1.0;  // would drop everything if armed
  Fabric faulty(config, faults);
  Fabric plain(config);
  for (std::uint64_t now = 0; now < 50; ++now) {
    const auto delivery = faulty.try_deliver(0, 1, now);
    ASSERT_TRUE(delivery.delivered);
    EXPECT_EQ(delivery.arrival, plain.deliver(0, 1, now));
  }
  EXPECT_EQ(faulty.stats().dropped, 0u);
}

TEST(FabricFaults, DropProbabilityOneLosesEveryMessage) {
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.enabled = true;
  faults.drop_probability = 1.0;
  Fabric fabric(config, faults);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fabric.try_deliver(0, 1, 100).delivered);
  }
  EXPECT_EQ(fabric.stats().dropped, 10u);
  EXPECT_EQ(fabric.stats().outage_dropped, 0u);
  EXPECT_EQ(fabric.stats().messages, 0u);  // drops never occupy a port
  EXPECT_EQ(fabric.stats().ports[0].dropped, 10u);  // charged to the source
  EXPECT_EQ(fabric.stats().ports[0].sent, 0u);
}

TEST(FabricFaults, OutageWindowDropsBothDirectionsWhileActive) {
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.enabled = true;
  faults.outages.push_back({/*port=*/1, /*start=*/100, /*end=*/200});
  Fabric fabric(config, faults);
  EXPECT_TRUE(fabric.try_deliver(0, 1, 99).delivered);   // before the window
  EXPECT_FALSE(fabric.try_deliver(1, 2, 150).delivered); // down as source
  EXPECT_FALSE(fabric.try_deliver(0, 1, 150).delivered); // down as destination
  EXPECT_TRUE(fabric.try_deliver(0, 2, 150).delivered);  // unaffected pair
  EXPECT_TRUE(fabric.try_deliver(0, 1, 200).delivered);  // end is exclusive
  EXPECT_EQ(fabric.stats().dropped, 2u);
  EXPECT_EQ(fabric.stats().outage_dropped, 2u);
}

TEST(FabricFaults, OutageCyclesSumsPerPort) {
  fabric::FaultConfig faults;
  faults.outages.push_back({/*port=*/1, 100, 200});
  faults.outages.push_back({/*port=*/1, 500, 550});
  faults.outages.push_back({/*port=*/2, 0, 10});
  EXPECT_EQ(faults.outage_cycles(1), 150u);
  EXPECT_EQ(faults.outage_cycles(2), 10u);
  EXPECT_EQ(faults.outage_cycles(0), 0u);
}

TEST(FabricFaults, JitterDelaysButNeverDrops) {
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.enabled = true;
  faults.jitter_probability = 1.0;
  faults.max_jitter_cycles = 5;
  Fabric fabric(config, faults);
  Fabric plain(config);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const std::uint64_t now = i * 100;  // spaced out: no port contention
    const auto delivery = fabric.try_deliver(0, 1, now);
    const std::uint64_t base = plain.deliver(0, 1, now);
    ASSERT_TRUE(delivery.delivered);
    EXPECT_GE(delivery.arrival, base + 1);
    EXPECT_LE(delivery.arrival, base + 5);
  }
  EXPECT_EQ(fabric.stats().jitter_events, 20u);
  EXPECT_GE(fabric.stats().jitter_cycles, 20u);
  EXPECT_LE(fabric.stats().jitter_cycles, 100u);
  EXPECT_EQ(fabric.stats().dropped, 0u);
}

TEST(FabricFaults, SeededDropsAreReproducibleAcrossReset) {
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.enabled = true;
  faults.drop_probability = 0.5;
  Fabric fabric(config, faults);
  std::vector<bool> first;
  for (std::uint64_t now = 0; now < 200; ++now) {
    first.push_back(fabric.try_deliver(0, 1, now).delivered);
  }
  EXPECT_GT(fabric.stats().dropped, 0u);
  EXPECT_GT(fabric.stats().messages, 0u);
  fabric.reset();  // reseeds the fault RNG
  EXPECT_EQ(fabric.stats().dropped, 0u);
  for (std::uint64_t now = 0; now < 200; ++now) {
    EXPECT_EQ(fabric.try_deliver(0, 1, now).delivered, first[now]);
  }
}

TEST(Fabric, SplitPhasesComposeToDeliver) {
  // The sharded engine runs egress at the source shard and ingress_commit at
  // the destination shard; run back-to-back they must be deliver() exactly.
  FabricConfig config;
  config.ports = 4;
  Fabric split(config);
  Fabric whole(config);
  const std::uint64_t times[] = {5, 5, 6, 9, 9, 9, 40};
  for (const std::uint64_t now : times) {
    const Egress out = split.egress(0, now);
    ASSERT_TRUE(out.delivered);
    const std::uint64_t arrival = split.ingress_commit(1, out.raw_arrival);
    EXPECT_EQ(arrival, whole.deliver(0, 1, now));
  }
  EXPECT_EQ(split.stats().messages, whole.stats().messages);
  EXPECT_EQ(split.stats().total_queueing_cycles,
            whole.stats().total_queueing_cycles);
}

TEST(FabricFaults, SplitLossyPhasesComposeToTryDeliver) {
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.enabled = true;
  faults.drop_probability = 0.3;
  faults.jitter_probability = 0.2;
  faults.max_jitter_cycles = 4;
  Fabric split(config, faults);
  Fabric whole(config, faults);
  for (std::uint64_t now = 0; now < 300; ++now) {
    const Egress out = split.egress_lossy(0, 1, now);
    const Delivery expected = whole.try_deliver(0, 1, now);
    ASSERT_EQ(out.delivered, expected.delivered);
    if (out.delivered) {
      EXPECT_EQ(split.ingress_commit(1, out.raw_arrival), expected.arrival);
    }
  }
  EXPECT_EQ(split.stats().dropped, whole.stats().dropped);
  EXPECT_EQ(split.stats().jitter_events, whole.stats().jitter_events);
  EXPECT_EQ(split.stats().jitter_cycles, whole.stats().jitter_cycles);
}

TEST(FabricFaults, PerSourcePortRngStreamsAreIndependent) {
  // Each egress port owns its fault RNG, so interleaving traffic from a
  // second source must not perturb the first source's drop sequence.
  FabricConfig config;
  config.ports = 4;
  fabric::FaultConfig faults;
  faults.enabled = true;
  faults.drop_probability = 0.5;
  Fabric alone(config, faults);
  Fabric mixed(config, faults);
  for (std::uint64_t now = 0; now < 200; ++now) {
    const bool expected = alone.try_deliver(0, 1, now).delivered;
    (void)mixed.try_deliver(2, 3, now);  // interleaved second source
    EXPECT_EQ(mixed.try_deliver(0, 1, now).delivered, expected);
  }
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.push(3);
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(BoundedQueue, CapacityRejectsOverflow) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.stats().rejected, 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.push(3));
}

TEST(BoundedQueue, UnboundedByDefault) {
  BoundedQueue<int> queue;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(queue.push(i));
  EXPECT_EQ(queue.size(), 1000u);
}

TEST(BoundedQueue, StatsTrackOccupancy) {
  BoundedQueue<int> queue;
  queue.push(1);
  queue.push(2);
  (void)queue.pop();
  queue.push(3);
  const auto& stats = queue.stats();
  EXPECT_EQ(stats.enqueued, 3u);
  EXPECT_EQ(stats.dequeued, 1u);
  EXPECT_EQ(stats.max_occupancy, 2u);
}

TEST(BoundedQueue, FrontThrowsWhenEmpty) {
  BoundedQueue<int> queue;
  EXPECT_THROW(queue.front(), std::out_of_range);
  queue.push(5);
  EXPECT_EQ(queue.front(), 5);
}

TEST(FaultConfigOutage, OutageCyclesMergesOverlappingWindows) {
  // Regression: outage_cycles must report the measure of the UNION of a
  // port's windows. Overlapping, nested, and abutting spans collapse first;
  // a cycle covered twice is counted once, and other ports don't leak in.
  fabric::FaultConfig faults;
  faults.outages.push_back(fabric::OutageWindow{0, 100, 200});
  faults.outages.push_back(fabric::OutageWindow{0, 150, 250});  // overlaps
  faults.outages.push_back(fabric::OutageWindow{0, 160, 180});  // nested
  faults.outages.push_back(fabric::OutageWindow{0, 250, 300});  // abuts
  faults.outages.push_back(fabric::OutageWindow{0, 400, 450});  // disjoint
  faults.outages.push_back(fabric::OutageWindow{1, 0, 1'000});  // other port
  EXPECT_EQ(faults.outage_cycles(0), (300u - 100u) + (450u - 400u));
  EXPECT_EQ(faults.outage_cycles(1), 1'000u);
  EXPECT_EQ(faults.outage_cycles(2), 0u);
}

TEST(FaultConfigOutage, PortDownTracksEveryWindowHalfOpen) {
  fabric::FaultConfig faults;
  faults.outages.push_back(fabric::OutageWindow{0, 100, 200});
  faults.outages.push_back(fabric::OutageWindow{0, 400, 450});
  EXPECT_FALSE(faults.port_down(0, 99));
  EXPECT_TRUE(faults.port_down(0, 100));   // start inclusive
  EXPECT_TRUE(faults.port_down(0, 199));
  EXPECT_FALSE(faults.port_down(0, 200));  // end exclusive
  EXPECT_TRUE(faults.port_down(0, 425));
  EXPECT_FALSE(faults.port_down(1, 150));
}

}  // namespace
