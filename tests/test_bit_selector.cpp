// Control-bit selection tests, including the paper's own worked example
// (Sec. 3.1: seven simplified prefixes P1..P7).
#include "partition/bit_selector.h"

#include <gtest/gtest.h>

#include "net/table_gen.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using partition::BitSelectorConfig;
using partition::compute_bit_stats;
using partition::evaluate_bits;
using partition::select_control_bits;

// The paper's simplified 8-bit prefixes, MSB-aligned into IPv4:
//   P1 = 101*, P2 = 1011*, P3 = 01*, P4 = 001110*, P5 = 10010011,
//   P6 = 10011*, P7 = 011001*.
RouteTable paper_example_table() {
  RouteTable table;
  table.add(Prefix(Ipv4Addr{0xA0000000u}, 3), 1);  // P1
  table.add(Prefix(Ipv4Addr{0xB0000000u}, 4), 2);  // P2
  table.add(Prefix(Ipv4Addr{0x40000000u}, 2), 3);  // P3
  table.add(Prefix(Ipv4Addr{0x38000000u}, 6), 4);  // P4
  table.add(Prefix(Ipv4Addr{0x93000000u}, 8), 5);  // P5
  table.add(Prefix(Ipv4Addr{0x98000000u}, 5), 6);  // P6
  table.add(Prefix(Ipv4Addr{0x64000000u}, 6), 7);  // P7
  return table;
}

TEST(BitStats, PaperExampleBitZero) {
  const RouteTable table = paper_example_table();
  const auto stats = compute_bit_stats(table.entries(), 0);
  // b0: P3, P4, P7 are 0; P1, P2, P5, P6 are 1; none are *.
  EXPECT_EQ(stats.phi0, 3u);
  EXPECT_EQ(stats.phi1, 4u);
  EXPECT_EQ(stats.phi_star, 0u);
  EXPECT_EQ(stats.imbalance(), 1u);
}

TEST(BitStats, PaperExampleBitTwo) {
  const RouteTable table = paper_example_table();
  const auto stats = compute_bit_stats(table.entries(), 2);
  // b2: P4 and P7 are 1 (001110*, 011001*), P1/P2 are 1, P5/P6 are 0,
  // P3 (01*) is *.
  EXPECT_EQ(stats.phi_star, 1u);
  EXPECT_EQ(stats.phi0, 2u);
  EXPECT_EQ(stats.phi1, 4u);
}

TEST(BitStats, PaperExampleBitFour) {
  const RouteTable table = paper_example_table();
  const auto stats = compute_bit_stats(table.entries(), 4);
  // b4: * for P1 (len 3), P2 (len 4), P3 (len 2); 0 for P5 (10010011) and
  // P7 (011001*); 1 for P4 (001110*) and P6 (10011*).
  EXPECT_EQ(stats.phi_star, 3u);
  EXPECT_EQ(stats.phi0, 2u);
  EXPECT_EQ(stats.phi1, 2u);
}

TEST(EvaluateBits, PaperExampleB2B4GivesTenTotal) {
  // Paper: partitioning by {b2, b4} yields {P3,P5}, {P3,P6}, {P1,P2,P3,P7},
  // {P1,P2,P3,P4} — 2+2+4+4 = 12 entries... the paper lists those four
  // partitions; sizes 2,2,4,4.
  const auto quality = evaluate_bits(paper_example_table(), std::array{2, 4});
  EXPECT_EQ(quality.total_entries, 12u);
  EXPECT_EQ(quality.largest, 4u);
  EXPECT_EQ(quality.smallest, 2u);
}

TEST(EvaluateBits, PaperExampleB0B4IsSuperior) {
  // Paper: {b0, b4} yields {P3,P7}, {P3,P4}, {P1,P2,P5}, {P1,P2,P6} —
  // sizes 2,2,3,3: fewer total entries and a smaller spread.
  const auto b0b4 = evaluate_bits(paper_example_table(), std::array{0, 4});
  EXPECT_EQ(b0b4.total_entries, 10u);
  EXPECT_EQ(b0b4.largest, 3u);
  EXPECT_EQ(b0b4.smallest, 2u);
  const auto b2b4 = evaluate_bits(paper_example_table(), std::array{2, 4});
  EXPECT_LT(b0b4.total_entries, b2b4.total_entries);
  EXPECT_LE(b0b4.largest - b0b4.smallest, b2b4.largest - b2b4.smallest);
}

TEST(SelectControlBits, PaperExamplePicksBitZeroFirst) {
  // b0 has zero replication and minimal imbalance; the greedy recursive
  // selection must prefer it.
  const auto bits = select_control_bits(paper_example_table(), 1);
  ASSERT_EQ(bits.size(), 1u);
  EXPECT_EQ(bits[0], 0);
}

TEST(SelectControlBits, PaperExampleTwoBitsBeatNaiveChoice) {
  const auto bits = select_control_bits(paper_example_table(), 2);
  ASSERT_EQ(bits.size(), 2u);
  const auto chosen = evaluate_bits(paper_example_table(), bits);
  const auto naive = evaluate_bits(paper_example_table(), std::array{2, 4});
  EXPECT_LE(chosen.total_entries, naive.total_entries);
}

TEST(SelectControlBits, EmptyTableAndZeroCount) {
  EXPECT_TRUE(select_control_bits(RouteTable{}, 2).empty());
  EXPECT_TRUE(select_control_bits(paper_example_table(), 0).empty());
}

TEST(SelectControlBits, BitsAreDistinct) {
  net::TableGenConfig config;
  config.size = 20'000;
  config.seed = 71;
  const RouteTable table = net::generate_table(config);
  const auto bits = select_control_bits(table, 4);
  ASSERT_EQ(bits.size(), 4u);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    for (std::size_t j = i + 1; j < bits.size(); ++j) {
      EXPECT_NE(bits[i], bits[j]);
    }
  }
}

TEST(SelectControlBits, AvoidsHighPositionsOnBackboneTables) {
  // Criterion (1): since >83% of prefixes are <= /24, bits past ~24 are *
  // for most prefixes and would replicate massively. The chosen bits must
  // sit well below that.
  net::TableGenConfig config;
  config.size = 20'000;
  config.seed = 72;
  const RouteTable table = net::generate_table(config);
  for (const int bit : select_control_bits(table, 4)) {
    EXPECT_LT(bit, 16) << "criterion (1) should rule out high, mostly-* bits";
  }
}

TEST(SelectControlBits, LowReplicationOnBackboneTables) {
  net::TableGenConfig config;
  config.size = 20'000;
  config.seed = 73;
  const RouteTable table = net::generate_table(config);
  const auto bits = select_control_bits(table, 2);
  const auto quality = evaluate_bits(table, bits);
  // 4 partitions should cost well under 10% replication on a typical table.
  EXPECT_LT(static_cast<double>(quality.total_entries),
            1.10 * static_cast<double>(table.size()));
}

TEST(SelectControlBits, BalancedPartitionsOnBackboneTables) {
  net::TableGenConfig config;
  config.size = 20'000;
  config.seed = 74;
  const RouteTable table = net::generate_table(config);
  const auto quality = evaluate_bits(table, select_control_bits(table, 2));
  EXPECT_LT(static_cast<double>(quality.largest),
            1.5 * static_cast<double>(quality.smallest));
}

TEST(SelectControlBits, MaxBitConfigIsRespected) {
  net::TableGenConfig config;
  config.size = 5'000;
  config.seed = 75;
  const RouteTable table = net::generate_table(config);
  BitSelectorConfig selector;
  selector.max_bit = 7;
  for (const int bit : select_control_bits(table, 3, selector)) {
    EXPECT_LE(bit, 7);
  }
}

TEST(BitScore, CombinedCostOrdering) {
  using partition::BitScore;
  // Sum of replication and imbalance decides; replication breaks ties.
  EXPECT_LT((BitScore{2, 0}), (BitScore{1, 100}));
  EXPECT_LT((BitScore{1, 5}), (BitScore{1, 6}));
  EXPECT_LT((BitScore{1, 5}), (BitScore{2, 4}));
  EXPECT_FALSE((BitScore{1, 5}) < (BitScore{1, 5}));
}

}  // namespace
