// Fault-tolerance tests for the router core: fabric fault injection plus
// the remote-lookup timeout/retry/degraded protocol (DESIGN.md, "Fault
// model"). The load-bearing property in every scenario is packet
// conservation — no matter what the fabric loses, every injected packet
// resolves exactly once with the full-table-correct next hop.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/prefix6.h"
#include "net/table_gen.h"

namespace {

using namespace spal;
using core::RouterConfig;
using core::RouterResult;
using core::RouterSim;
using core::RouterSim6;

net::RouteTable small_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 201;
  return net::generate_table(config);
}

RouterConfig small_config(int num_lcs) {
  RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 2'000;
  config.cache.blocks = 512;
  config.line_rate_gbps = 10.0;
  return config;
}

trace::WorkloadProfile small_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

/// Every-scenario invariants: full conservation plus a balanced recovery
/// ledger (see FaultStats in router_config.h for the derivations).
void expect_conserved(const RouterResult& result, std::uint64_t injected) {
  EXPECT_EQ(result.resolved_packets, injected);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.latency.count(), injected);
  EXPECT_EQ(result.fault.timeouts,
            result.fault.retransmits + result.fault.degraded_fallbacks);
  EXPECT_LE(result.fault.drops,
            result.fault.retransmits + result.fault.degraded_fallbacks);
  EXPECT_LE(result.fault.outage_drops, result.fault.drops);
  EXPECT_GE(result.fault.degraded_lookups, result.fault.degraded_fallbacks);
  EXPECT_EQ(result.fault.reclaimed_waiting_blocks,
            result.cache_total.cancelled_reservations);
  // Attempt accounting: every request/reply transmission either traversed
  // the fabric or was dropped at injection.
  EXPECT_EQ(result.remote_requests + result.remote_replies,
            result.fabric.messages + result.fabric.dropped);
}

TEST(FaultRecovery, EnabledZeroFaultLayerIsByteIdentical) {
  // Arming the fault layer with zero probabilities and no outages must not
  // perturb the simulation at all: the timers it schedules are all stale by
  // the time they fire, no RNG is consumed, and every metric — latencies,
  // cache counters, makespan — matches the disabled run exactly.
  RouterConfig plain = small_config(4);
  RouterConfig armed = plain;
  armed.fault.enabled = true;

  RouterSim a(small_table(), plain);
  RouterSim b(small_table(), armed);
  const RouterResult ra = a.run_workload(small_profile(), /*verify=*/true);
  const RouterResult rb = b.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(ra.to_json(), rb.to_json());
  EXPECT_EQ(rb.fault.timeouts, 0u);
  EXPECT_EQ(rb.fault.duplicate_replies, 0u);
}

TEST(FaultRecovery, ModerateDropsRecoverByRetransmission) {
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.fault.drop_probability = 0.05;
  config.recovery.max_retries = 5;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_conserved(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.fault.drops, 0u);
  EXPECT_GT(result.fault.retransmits, 0u);
}

TEST(FaultRecovery, TotalLossDegradesEveryRemoteLookup) {
  // drop_probability = 1: no request ever reaches its home LC, so every
  // remote lookup must burn its full retry budget and fall back to the
  // degraded local slow path — and still resolve correctly.
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.fault.drop_probability = 1.0;
  config.recovery.max_retries = 2;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_conserved(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.fault.degraded_fallbacks, 0u);
  EXPECT_EQ(result.remote_replies, 0u);  // nothing ever got through
  // Every attempt was dropped, so the ledger balances exactly.
  EXPECT_EQ(result.fault.drops, result.remote_requests);
  EXPECT_EQ(result.fault.drops,
            result.fault.retransmits + result.fault.degraded_fallbacks);
  EXPECT_EQ(result.fabric.messages, 0u);
}

TEST(FaultRecovery, DeadLineCardIsSurvivedInDegradedMode) {
  // LC 1's fabric port is down for the whole run: every lookup homed there
  // (and every reply LC 1 owes others) is lost. Packets that arrive at LC 1
  // itself still resolve locally; everyone else reaches LC 1's share of the
  // table through the degraded fallback.
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.fault.outages.push_back(
      fabric::OutageWindow{/*port=*/1, /*start=*/0,
                           /*end=*/std::uint64_t{1} << 40});
  config.recovery.max_retries = 1;  // keep the retry tax small
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_conserved(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.fault.outage_drops, 0u);
  EXPECT_GT(result.fault.degraded_lookups, 0u);
  EXPECT_GT(result.fault.per_lc_outage_cycles[1], 0u);
  EXPECT_EQ(result.fault.per_lc_outage_cycles[0], 0u);
}

TEST(FaultRecovery, SpuriousTimeoutsAreAbsorbedAsDuplicates) {
  // An absurdly aggressive timer fires long before any reply can arrive, so
  // every remote lookup retransmits and the home LC answers multiple
  // attempts of the same sequence number. Exactly one reply settles each
  // request; the rest must be counted and suppressed without touching the
  // cache or double-resolving.
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.recovery.timeout_cycles = 1;
  config.recovery.max_retries = 12;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_conserved(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.fault.retransmits, 0u);
  EXPECT_GT(result.fault.duplicate_replies, 0u);
}

TEST(FaultRecovery, SeededFaultRunsAreReproducible) {
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.fault.drop_probability = 0.1;
  config.fault.jitter_probability = 0.2;
  config.fault.max_jitter_cycles = 7;
  config.fault.outages.push_back(fabric::OutageWindow{2, 1'000, 30'000});
  RouterSim router(small_table(), config);
  const RouterResult a = router.run_workload(small_profile(), /*verify=*/true);
  const RouterResult b = router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_GT(a.fault.drops, 0u);
  EXPECT_GT(a.fault.jitter_events, 0u);
}

TEST(FaultRecovery, JitterAloneNeverLosesPackets) {
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.fault.jitter_probability = 0.5;
  config.fault.max_jitter_cycles = 9;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_conserved(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.fault.jitter_events, 0u);
  EXPECT_EQ(result.fault.drops, 0u);
  EXPECT_EQ(result.fault.degraded_fallbacks, 0u);
}

TEST(FaultRecovery, InvalidFaultConfigIsRejectedAtConstruction) {
  RouterConfig config = small_config(4);
  config.fault.enabled = true;
  config.fault.drop_probability = 1.5;
  EXPECT_THROW(RouterSim(small_table(), config), std::invalid_argument);
  config = small_config(4);
  config.fault.enabled = true;
  config.fault.outages.push_back(fabric::OutageWindow{/*port=*/7, 0, 100});
  EXPECT_THROW(RouterSim(small_table(), config), std::invalid_argument);
}

TEST(FaultRecovery, BackoffCyclesDoublesClampsAndSaturates) {
  // Property sweep for the retry backoff: bit-identical to the historical
  // `base << min(attempt, 20)` wherever that did not overflow, monotone
  // non-decreasing in the attempt, and saturated at the ceiling so
  // `now + 1 + backoff` can never wrap the 64-bit clock.
  using core::backoff_cycles;
  using core::kBackoffCeilingCycles;
  using core::kBackoffMaxShift;
  for (const std::uint64_t base :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{640},
        std::uint64_t{1} << 40, kBackoffCeilingCycles - 1,
        kBackoffCeilingCycles, ~std::uint64_t{0}}) {
    std::uint64_t previous = 0;
    for (int attempt = 0; attempt <= 128; ++attempt) {
      const std::uint64_t backoff = backoff_cycles(base, attempt);
      const int shift = attempt < kBackoffMaxShift ? attempt : kBackoffMaxShift;
      if (base < (kBackoffCeilingCycles >> shift)) {
        EXPECT_EQ(backoff, base << shift) << "base=" << base
                                          << " attempt=" << attempt;
      } else {
        EXPECT_EQ(backoff, kBackoffCeilingCycles);
      }
      EXPECT_GE(backoff, previous);
      EXPECT_LE(backoff, kBackoffCeilingCycles);  // now + 1 + backoff is safe
      previous = backoff;
    }
  }
  // Degenerate inputs: a zero base never backs off; a negative attempt is
  // treated as the first.
  EXPECT_EQ(backoff_cycles(0, 5), 0u);
  EXPECT_EQ(backoff_cycles(640, -3), 640u);
  // Beyond the clamp the doubling stops dead.
  EXPECT_EQ(backoff_cycles(1, kBackoffMaxShift),
            backoff_cycles(1, kBackoffMaxShift + 17));
}

TEST(FaultRecovery6, Ipv6RouterSurvivesDropsAndOutage) {
  // The recovery protocol lives in the shared core: the IPv6 router must
  // show the same conservation under combined loss and a dead LC.
  net::TableGen6Config table_config;
  table_config.size = 3'000;
  table_config.seed = 601;
  const net::RouteTable6 table = net::generate_table6(table_config);
  RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 1'500;
  config.cache.blocks = 512;
  config.line_rate_gbps = 10.0;
  config.fault.enabled = true;
  config.fault.drop_probability = 0.05;
  config.fault.outages.push_back(
      fabric::OutageWindow{/*port=*/2, /*start=*/0,
                           /*end=*/std::uint64_t{1} << 40});
  config.recovery.max_retries = 2;
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  RouterSim6 router(table, config);
  const RouterResult result = router.run_workload(profile, /*verify=*/true);
  expect_conserved(result, 4 * config.packets_per_lc);
  EXPECT_GT(result.fault.outage_drops, 0u);
  EXPECT_GT(result.fault.degraded_lookups, 0u);
  EXPECT_GT(result.fault.retransmits, 0u);
}

}  // namespace
