#include "net/table_gen.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace {

using namespace spal::net;

TEST(TableGen, ProducesExactSize) {
  TableGenConfig config;
  config.size = 5000;
  config.seed = 11;
  EXPECT_EQ(generate_table(config).size(), 5000u);
}

TEST(TableGen, DeterministicPerSeed) {
  TableGenConfig config;
  config.size = 3000;
  config.seed = 99;
  EXPECT_EQ(generate_table(config), generate_table(config));
}

TEST(TableGen, DifferentSeedsDiffer) {
  TableGenConfig a, b;
  a.size = b.size = 3000;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(generate_table(a), generate_table(b));
}

TEST(TableGen, MajorityAtMostSlash24) {
  // The structural property Sec. 3.1 relies on: >83% of prefixes are /24 or
  // shorter (the reason Criterion (1) rules out large bit positions).
  TableGenConfig config;
  config.size = 30'000;
  config.seed = 5;
  const RouteTable table = generate_table(config);
  EXPECT_GT(static_cast<double>(table.count_length_at_most(24)),
            0.83 * static_cast<double>(table.size()));
}

TEST(TableGen, Slash24Dominates) {
  TableGenConfig config;
  config.size = 30'000;
  config.seed = 5;
  const auto hist = generate_table(config).length_histogram();
  // /24 carries the largest share of any single length.
  for (int len = 0; len <= 32; ++len) {
    if (len != 24) {
      EXPECT_GE(hist[24], hist[static_cast<std::size_t>(len)]) << len;
    }
  }
  EXPECT_GT(hist[24], 30'000u / 3);
}

TEST(TableGen, ContainsHostRoutes) {
  // The paper stresses that backbone tables contain /32 exceptions.
  TableGenConfig config;
  config.size = 30'000;
  config.seed = 5;
  EXPECT_GT(generate_table(config).length_histogram()[32], 0u);
}

TEST(TableGen, ContainsNestedExceptions) {
  TableGenConfig config;
  config.size = 10'000;
  config.seed = 5;
  const RouteTable table = generate_table(config);
  // Some prefix must be covered by a shorter one (aggregation structure).
  std::size_t nested = 0;
  const auto entries = table.entries();
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    if (entries[i].prefix.covers(entries[i + 1].prefix)) ++nested;
  }
  EXPECT_GT(nested, 100u);
}

TEST(TableGen, NoNestingWhenDisabled) {
  TableGenConfig config;
  config.size = 2000;
  config.seed = 5;
  config.nested_fraction = 0.0;
  const RouteTable table = generate_table(config);
  EXPECT_EQ(table.size(), 2000u);
}

TEST(TableGen, NextHopsWithinRange) {
  TableGenConfig config;
  config.size = 2000;
  config.next_hops = 4;
  // The table must outlive the loop: entries() returns a reference into it,
  // and a temporary dies at the end of the range-init expression.
  const RouteTable table = generate_table(config);
  for (const RouteEntry& e : table.entries()) {
    EXPECT_LT(e.next_hop, 4u);
  }
}

TEST(TableGen, Rt1AndRt2MatchPaperSizes) {
  EXPECT_EQ(make_rt1().size(), 41'709u);
  EXPECT_EQ(make_rt2().size(), 140'838u);
}

TEST(TableGen, RandomAddressInStaysInsidePrefix) {
  std::mt19937_64 rng(3);
  const Prefix prefix = *Prefix::parse("10.1.2.0/24");
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(prefix.matches(random_address_in(prefix, rng)));
  }
}

TEST(TableGen, RandomAddressInCoversHostBits) {
  std::mt19937_64 rng(3);
  const Prefix prefix = *Prefix::parse("10.1.2.0/24");
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(random_address_in(prefix, rng).value());
  EXPECT_GT(seen.size(), 100u);  // host byte actually varies
}

TEST(TableGen, RandomAddressInHostRouteIsExact) {
  std::mt19937_64 rng(3);
  const Prefix prefix = *Prefix::parse("1.2.3.4/32");
  EXPECT_EQ(random_address_in(prefix, rng).value(), 0x01020304u);
}

}  // namespace
