#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/metrics.h"
#include "sim/packet_source.h"

namespace {

using namespace spal;
using sim::EventQueue;
using sim::LatencyStats;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> queue;
  queue.schedule(30, 3);
  queue.schedule(10, 1);
  queue.schedule(20, 2);
  EXPECT_EQ(queue.pop().second, 1);
  EXPECT_EQ(queue.pop().second, 2);
  EXPECT_EQ(queue.pop().second, 3);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EqualTimesPopInInsertionOrder) {
  EventQueue<int> queue;
  for (int i = 0; i < 50; ++i) queue.schedule(7, i);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(queue.pop().second, i);
}

TEST(EventQueue, ReturnsTimestamps) {
  EventQueue<char> queue;
  queue.schedule(42, 'a');
  EXPECT_EQ(queue.next_time(), 42u);
  const auto [time, event] = queue.pop();
  EXPECT_EQ(time, 42u);
  EXPECT_EQ(event, 'a');
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> queue;
  EXPECT_EQ(queue.size(), 0u);
  queue.schedule(1, 1);
  queue.schedule(2, 2);
  EXPECT_EQ(queue.size(), 2u);
  (void)queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue<int> queue;
  queue.schedule(10, 1);
  queue.schedule(30, 3);
  EXPECT_EQ(queue.pop().second, 1);
  queue.schedule(20, 2);  // earlier than the remaining event
  EXPECT_EQ(queue.pop().second, 2);
  EXPECT_EQ(queue.pop().second, 3);
}

TEST(LatencyStats, MeanAndWorst) {
  LatencyStats stats;
  stats.record(10);
  stats.record(20);
  stats.record(30);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean_cycles(), 20.0);
  EXPECT_EQ(stats.worst_cycles(), 30u);
}

TEST(LatencyStats, EmptyIsZero) {
  const LatencyStats stats;
  EXPECT_DOUBLE_EQ(stats.mean_cycles(), 0.0);
  EXPECT_EQ(stats.worst_cycles(), 0u);
  EXPECT_DOUBLE_EQ(stats.lookups_per_second(5.0), 0.0);
}

TEST(LatencyStats, Percentiles) {
  LatencyStats stats;
  for (std::uint64_t i = 1; i <= 100; ++i) stats.record(i);
  EXPECT_EQ(stats.percentile(0.5), 50u);
  EXPECT_EQ(stats.percentile(0.99), 99u);
  EXPECT_EQ(stats.percentile(1.0), 100u);
}

TEST(LatencyStats, OutliersKeepTheirValue) {
  // Regression: values beyond the linear tier used to be clamped into its
  // last bucket, so percentile(1.0) reported the histogram range instead of
  // the recorded worst case. The geometric overflow tier keeps them.
  LatencyStats stats(16);
  stats.record(1'000'000);  // far beyond the linear tier
  EXPECT_EQ(stats.worst_cycles(), 1'000'000u);
  EXPECT_EQ(stats.percentile(1.0), 1'000'000u);
}

TEST(LatencyStats, LookupsPerSecondMatchesPaperArithmetic) {
  // The paper: mean < 9.2 cycles of 5 ns -> >21 Mpps per LC.
  LatencyStats stats;
  for (int i = 0; i < 10; ++i) stats.record(9);
  EXPECT_GT(stats.lookups_per_second(5.0), 21e6);
}

TEST(LatencyStats, MergeCombines) {
  LatencyStats a, b;
  a.record(10);
  b.record(30);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean_cycles(), 20.0);
  EXPECT_EQ(a.worst_cycles(), 30u);
}

TEST(PacketSource, PaperBoundsAt40G) {
  const auto bounds = sim::arrival_bounds(40.0);
  EXPECT_EQ(bounds.min_cycles, 2);
  EXPECT_EQ(bounds.max_cycles, 18);
}

TEST(PacketSource, PaperBoundsAt10G) {
  const auto bounds = sim::arrival_bounds(10.0);
  EXPECT_EQ(bounds.min_cycles, 6);
  EXPECT_EQ(bounds.max_cycles, 74);
}

TEST(PacketSource, RejectsNonPositiveRate) {
  EXPECT_THROW(sim::arrival_bounds(0.0), std::invalid_argument);
  EXPECT_THROW(sim::arrival_bounds(-1.0), std::invalid_argument);
}

TEST(PacketSource, ArrivalsAreMonotoneWithBoundedGaps) {
  const auto times = sim::generate_arrival_times(40.0, 10'000, 7);
  ASSERT_EQ(times.size(), 10'000u);
  std::uint64_t prev = 0;
  for (const std::uint64_t t : times) {
    const std::uint64_t gap = t - prev;
    EXPECT_GE(gap, 2u);
    EXPECT_LE(gap, 18u);
    prev = t;
  }
}

TEST(PacketSource, MeanGapNearTen) {
  // Uniform[2,18] has mean 10 cycles: one packet per 50 ns at 40 Gbps with
  // 256-byte mean packets.
  const auto times = sim::generate_arrival_times(40.0, 100'000, 8);
  const double mean_gap =
      static_cast<double>(times.back()) / static_cast<double>(times.size());
  EXPECT_NEAR(mean_gap, 10.0, 0.2);
}

TEST(PacketSource, DeterministicPerSeed) {
  EXPECT_EQ(sim::generate_arrival_times(40.0, 100, 9),
            sim::generate_arrival_times(40.0, 100, 9));
  EXPECT_NE(sim::generate_arrival_times(40.0, 100, 9),
            sim::generate_arrival_times(40.0, 100, 10));
}

}  // namespace
