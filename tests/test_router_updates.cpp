// Live route-update pipeline tests: the staleness invariant (no lookup may
// resolve a withdrawn/changed hop after that update has settled), quota and
// waiting-list conservation across invalidations, the update-ledger
// identities the JSON report check relies on, and rerunnability of a router
// whose FEs were mutated in place by a previous run.
#include <gtest/gtest.h>

#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/table_gen.h"

namespace {

using namespace spal;
using core::RouterConfig;
using core::RouterResult;
using core::RouterSim;
using core::RouterSim6;

net::RouteTable v4_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 201;
  return net::generate_table(config);
}

net::RouteTable6 v6_table() {
  net::TableGen6Config config;
  config.size = 3'000;
  config.seed = 601;
  return net::generate_table6(config);
}

trace::WorkloadProfile small_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

/// Heavy churn: an update every 400 cycles, withdraw-heavy mix (withdrawals
/// are the staleness-prone kind — a stale cached hop for a withdrawn prefix
/// is exactly the bug the invalidation protocol must prevent).
RouterConfig churn_config(int psi, RouterConfig::UpdatePolicy policy,
                          trie::TrieKind trie) {
  RouterConfig config = core::spal_default_config(psi);
  config.packets_per_lc = 3'000;
  config.cache.blocks = 512;
  config.trie = trie;
  config.update_policy = policy;
  config.update.interval_cycles = 400;
  config.update.seed = 11;
  config.update.announce_fraction = 0.2;
  config.update.withdraw_fraction = 0.5;
  return config;
}

struct ChurnCase {
  const char* label;
  RouterConfig::UpdatePolicy policy;
  trie::TrieKind trie;
  int psi;
};

const ChurnCase kChurnCases[] = {
    {"selective_dp_psi4", RouterConfig::UpdatePolicy::kSelectiveInvalidate,
     trie::TrieKind::kDp, 4},
    {"selective_lulea_psi4", RouterConfig::UpdatePolicy::kSelectiveInvalidate,
     trie::TrieKind::kLulea, 4},
    {"selective_dp_psi8", RouterConfig::UpdatePolicy::kSelectiveInvalidate,
     trie::TrieKind::kDp, 8},
    {"flush_dp_psi4", RouterConfig::UpdatePolicy::kFlushAll,
     trie::TrieKind::kDp, 4},
    {"flush_lulea_psi4", RouterConfig::UpdatePolicy::kFlushAll,
     trie::TrieKind::kLulea, 4},
};

class StalenessTest : public ::testing::TestWithParam<ChurnCase> {};

// The staleness invariant, end to end: with verification on, every resolved
// packet is checked against the churning oracle, and a mismatch is excused
// only while an update covering the destination is still in flight. Zero
// mismatches means no lookup ever returned a hop after its update settled.
TEST_P(StalenessTest, NoStaleHopResolvesAfterUpdateSettles) {
  const ChurnCase& c = GetParam();
  RouterSim router(v4_table(), churn_config(c.psi, c.policy, c.trie));
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets,
            static_cast<std::uint64_t>(c.psi) * 3'000u);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_GT(result.update.applied, 0u);
}

INSTANTIATE_TEST_SUITE_P(Churn, StalenessTest,
                         ::testing::ValuesIn(kChurnCases),
                         [](const ::testing::TestParamInfo<ChurnCase>& info) {
                           return info.param.label;
                         });

TEST(RouterUpdates, V6StalenessUnderChurn) {
  for (const auto policy : {RouterConfig::UpdatePolicy::kSelectiveInvalidate,
                            RouterConfig::UpdatePolicy::kFlushAll}) {
    RouterSim6 router(v6_table(),
                      churn_config(4, policy, trie::TrieKind::kDp));
    const RouterResult result =
        router.run_workload(small_profile(), /*verify=*/true);
    EXPECT_EQ(result.resolved_packets, 4u * 3'000u);
    EXPECT_EQ(result.verify_mismatches, 0u);
    EXPECT_GT(result.update.applied, 0u);
  }
}

// Quota / waiting-list conservation. fill() is only ever called for a
// reservation that succeeded, so in a fault-free run every reservation is
// resolved exactly once: by its fill (selective invalidation never touches
// W=1 blocks) or — under flush — by an orphan fill after the flush
// destroyed the waiting block. Any imbalance means an invalidation leaked a
// γ-quota slot or a waiting-list node.
TEST(RouterUpdates, SelectiveInvalidationPreservesWaitingBlocks) {
  RouterSim router(
      v4_table(),
      churn_config(4, RouterConfig::UpdatePolicy::kSelectiveInvalidate,
                   trie::TrieKind::kDp));
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.cache_total.fills, result.cache_total.reservations);
  EXPECT_EQ(result.cache_total.orphan_fills, 0u);
  EXPECT_EQ(result.cache_total.cancelled_reservations, 0u);
  EXPECT_EQ(result.update.cache_flushes, 0u);
}

TEST(RouterUpdates, FlushAccountsForEveryDestroyedWaitingBlock) {
  RouterSim router(v4_table(),
                   churn_config(4, RouterConfig::UpdatePolicy::kFlushAll,
                                trie::TrieKind::kDp));
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.cache_total.fills + result.cache_total.orphan_fills,
            result.cache_total.reservations);
  EXPECT_EQ(result.cache_total.cancelled_reservations, 0u);
  EXPECT_GT(result.update.cache_flushes, 0u);
}

// The ledger identities spal_report --check enforces, asserted directly on
// the result struct (psi = 4 here, so each application broadcasts to 3
// other LCs).
TEST(RouterUpdates, UpdateLedgerBalances) {
  const int psi = 4;
  RouterSim router(
      v4_table(),
      churn_config(psi, RouterConfig::UpdatePolicy::kSelectiveInvalidate,
                   trie::TrieKind::kDp));
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  const core::UpdateStats& u = result.update;
  EXPECT_GT(u.applied, 0u);
  EXPECT_EQ(u.applied, u.announces + u.withdraws + u.hop_changes);
  EXPECT_EQ(u.applications, u.fe_incremental + u.fe_rebuilds);
  EXPECT_LE(u.applied, u.applications);
  EXPECT_EQ(u.update_messages, u.applications);
  EXPECT_EQ(u.invalidation_messages,
            u.applications * static_cast<std::uint64_t>(psi - 1));
  EXPECT_EQ(u.applied, result.updates_applied);
  // The DP trie takes the incremental path; nothing should epoch-rebuild.
  EXPECT_EQ(u.fe_rebuilds, 0u);
  EXPECT_GT(u.fe_incremental, 0u);
  EXPECT_GT(u.update_cost_cycles, 0u);
  // Control messages ride the same fabric as lookups.
  EXPECT_EQ(result.fabric.messages,
            result.remote_requests + result.remote_replies +
                u.update_messages + u.invalidation_messages);
}

// Immutable FEs (Lulea) must take the epoch-rebuild path instead.
TEST(RouterUpdates, ImmutableTrieRebuildsPerApplication) {
  RouterSim router(
      v4_table(),
      churn_config(4, RouterConfig::UpdatePolicy::kSelectiveInvalidate,
                   trie::TrieKind::kLulea));
  const RouterResult result = router.run_workload(small_profile());
  EXPECT_EQ(result.update.fe_incremental, 0u);
  EXPECT_GT(result.update.fe_rebuilds, 0u);
  EXPECT_EQ(result.update.fe_rebuilds, result.update.applications);
}

// With the pipeline off (interval_cycles == 0) every update counter stays
// zero and the run is indistinguishable from a build without the pipeline.
TEST(RouterUpdates, ZeroUpdateRunKeepsLedgerEmpty) {
  RouterConfig config = core::spal_default_config(4);
  config.packets_per_lc = 3'000;
  config.cache.blocks = 512;
  RouterSim router(v4_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  const core::UpdateStats& u = result.update;
  EXPECT_EQ(u.applied, 0u);
  EXPECT_EQ(u.applications, 0u);
  EXPECT_EQ(u.update_messages, 0u);
  EXPECT_EQ(u.invalidation_messages, 0u);
  EXPECT_EQ(u.blocks_invalidated, 0u);
  EXPECT_EQ(u.cache_flushes, 0u);
  EXPECT_EQ(u.update_cost_cycles, 0u);
}

// A router whose FE fragments were mutated in place must rebuild them for
// the next run: two runs of the same churning router are bit-identical.
TEST(RouterUpdates, ChurnedRouterIsRerunnable) {
  RouterSim router(
      v4_table(),
      churn_config(4, RouterConfig::UpdatePolicy::kSelectiveInvalidate,
                   trie::TrieKind::kDp));
  const RouterResult a = router.run_workload(small_profile(), /*verify=*/true);
  const RouterResult b = router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(a.verify_mismatches, 0u);
  EXPECT_EQ(b.verify_mismatches, 0u);
  EXPECT_EQ(a.resolved_packets, b.resolved_packets);
  EXPECT_EQ(a.latency.total_cycles(), b.latency.total_cycles());
  EXPECT_EQ(a.update.applied, b.update.applied);
  EXPECT_EQ(a.update.blocks_invalidated, b.update.blocks_invalidated);
  EXPECT_EQ(a.fabric.messages, b.fabric.messages);
}

// Same pipeline, unpartitioned table: every LC holds the full table, so
// every update is applied at all ψ LCs.
TEST(RouterUpdates, UnpartitionedUpdatesApplyAtEveryLc) {
  RouterConfig config =
      churn_config(4, RouterConfig::UpdatePolicy::kSelectiveInvalidate,
                   trie::TrieKind::kDp);
  config.partition = false;
  RouterSim router(v4_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_GT(result.update.applied, 0u);
  EXPECT_EQ(result.update.applications, result.update.applied * 4u);
}

}  // namespace
