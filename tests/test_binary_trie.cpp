#include "trie/binary_trie.h"

#include <gtest/gtest.h>

#include <random>

#include "net/table_gen.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::kNoRoute;
using net::Prefix;
using net::RouteTable;
using trie::BinaryTrie;
using trie::MemAccessCounter;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(BinaryTrie, EmptyReturnsNoRoute) {
  const BinaryTrie trie;
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x12345678u}), kNoRoute);
}

TEST(BinaryTrie, LongestMatchWins) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.1.0.0/16"), 2);
  trie.insert(p("10.1.2.0/24"), 3);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010203u}), 3u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A01F000u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0AFF0000u}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0B000000u}), kNoRoute);
}

TEST(BinaryTrie, DefaultRoute) {
  BinaryTrie trie;
  trie.insert(p("0.0.0.0/0"), 42);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0u}), 42u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0xFFFFFFFFu}), 42u);
}

TEST(BinaryTrie, HostRoute) {
  BinaryTrie trie;
  trie.insert(p("1.2.3.4/32"), 5);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x01020304u}), 5u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x01020305u}), kNoRoute);
}

TEST(BinaryTrie, InsertReplaces) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.0.0.0/8"), 9);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A000000u}), 9u);
}

TEST(BinaryTrie, RemoveRestoresShorterMatch) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), 1);
  trie.insert(p("10.1.0.0/16"), 2);
  EXPECT_TRUE(trie.remove(p("10.1.0.0/16")));
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010000u}), 1u);
}

TEST(BinaryTrie, RemoveAbsentReturnsFalse) {
  BinaryTrie trie;
  trie.insert(p("10.0.0.0/8"), 1);
  EXPECT_FALSE(trie.remove(p("10.1.0.0/16")));
  EXPECT_FALSE(trie.remove(p("11.0.0.0/8")));
}

TEST(BinaryTrie, RemoveDefaultRoute) {
  // The default route lives on the root node, which is never deleted;
  // removing it must clear the hop without disturbing longer matches.
  BinaryTrie trie;
  trie.insert(p("0.0.0.0/0"), 7);
  trie.insert(p("10.0.0.0/8"), 1);
  EXPECT_TRUE(trie.remove(p("0.0.0.0/0")));
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0B000000u}), kNoRoute);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A000001u}), 1u);
  EXPECT_FALSE(trie.remove(p("0.0.0.0/0")));
  trie.insert(p("0.0.0.0/0"), 9);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0B000000u}), 9u);
}

TEST(BinaryTrie, RemoveLastPrefixLeavesEmptyTrie) {
  BinaryTrie trie;
  trie.insert(p("10.1.2.0/24"), 1);
  EXPECT_TRUE(trie.remove(p("10.1.2.0/24")));
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010200u}), kNoRoute);
  // A second removal (and removal of an inner path node) must not succeed.
  EXPECT_FALSE(trie.remove(p("10.1.2.0/24")));
  EXPECT_FALSE(trie.remove(p("10.1.0.0/16")));
}

TEST(BinaryTrie, BuildFromTableMatchesLinearOracle) {
  net::TableGenConfig config;
  config.size = 3000;
  config.seed = 21;
  const RouteTable table = net::generate_table(config);
  const BinaryTrie trie(table);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 3000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    EXPECT_EQ(trie.lookup(addr), table.lookup_linear(addr)) << addr.to_string();
  }
}

TEST(BinaryTrie, MatchedAddressesAgreeWithOracle) {
  net::TableGenConfig config;
  config.size = 3000;
  config.seed = 22;
  const RouteTable table = net::generate_table(config);
  const BinaryTrie trie(table);
  std::mt19937_64 rng(8);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 3000; ++i) {
    const auto addr =
        net::random_address_in(table.entries()[pick(rng)].prefix, rng);
    EXPECT_EQ(trie.lookup(addr), table.lookup_linear(addr)) << addr.to_string();
  }
}

TEST(BinaryTrie, CountedLookupChargesPerLevel) {
  BinaryTrie trie;
  trie.insert(p("10.1.2.0/24"), 1);
  MemAccessCounter counter;
  (void)trie.lookup_counted(Ipv4Addr{0x0A010200u}, counter);
  // Root + 24 levels of descent = 25 node reads.
  EXPECT_EQ(counter.total(), 25u);
}

TEST(BinaryTrie, CountedAndPlainAgree) {
  net::TableGenConfig config;
  config.size = 500;
  config.seed = 23;
  const RouteTable table = net::generate_table(config);
  const BinaryTrie trie(table);
  std::mt19937_64 rng(9);
  MemAccessCounter counter;
  for (int i = 0; i < 500; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    EXPECT_EQ(trie.lookup(addr), trie.lookup_counted(addr, counter));
  }
}

TEST(BinaryTrie, StorageGrowsWithNodes) {
  BinaryTrie trie;
  const std::size_t empty = trie.storage_bytes();
  trie.insert(p("10.1.2.0/24"), 1);
  EXPECT_GT(trie.storage_bytes(), empty);
  EXPECT_EQ(trie.storage_bytes(), trie.node_count() * 12);
}

TEST(BinaryTrie, NameIsBinary) {
  EXPECT_EQ(BinaryTrie{}.name(), "binary");
}

}  // namespace
