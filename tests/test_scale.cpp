// Internet-scale table tests: the 1M-prefix IPv4 generator (histogram
// fidelity, uniqueness, seed reproducibility), differential lookup fuzz on
// sampled slices for every trie kind in both families, and the
// wide-layout regressions for the structures whose paper-era formats
// overflow at this scale (LC-trie 20-bit adr, Gupta 15-bit payload).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "net/table_gen.h"
#include "trie/binary_trie.h"
#include "trie/binary_trie6.h"
#include "trie/dp_trie.h"
#include "trie/dp_trie6.h"
#include "trie/gupta_trie.h"
#include "trie/lc_trie.h"
#include "trie/lc_trie6.h"
#include "trie/lpm.h"
#include "trie/lulea_trie.h"

namespace {

using namespace spal;

constexpr std::size_t kInternetSize = 1'000'000;

/// The 1M-prefix table, generated once and shared by every test in this
/// file (generation is seconds-scale under sanitizers).
const net::RouteTable& internet_table() {
  static const net::RouteTable table = net::make_rt_internet(kInternetSize);
  return table;
}

/// Every `stride`-th entry — a sampled slice that keeps per-kind build
/// cost test-sized while exercising the 1M table's actual prefix mix.
net::RouteTable sampled_slice(const net::RouteTable& table,
                              std::size_t stride) {
  std::vector<net::RouteEntry> entries;
  entries.reserve(table.size() / stride + 1);
  for (std::size_t i = 0; i < table.entries().size(); i += stride) {
    entries.push_back(table.entries()[i]);
  }
  return net::RouteTable(std::move(entries));
}

// --- Generator properties at 1M ---

TEST(ScaleTableGen, SizeAndCountAreExact) {
  EXPECT_EQ(internet_table().size(), kInternetSize);
}

// The per-length histogram must track the capacity-capped model the
// generator samples from (effective_length_weights): multinomial noise at
// N = 1M is ~0.05% per bucket, so a 1% absolute tolerance is generous
// while still pinning the /24-dominated shape.
TEST(ScaleTableGen, HistogramMatchesEffectiveWeights) {
  net::TableGenConfig config;
  config.size = kInternetSize;
  config.seed = 0x5eed'0010;  // make_rt_internet's configuration
  config.next_hops = 64;
  const auto weights = net::effective_length_weights(config);
  double weight_sum = 0.0;
  for (const double w : weights) weight_sum += w;
  ASSERT_GT(weight_sum, 0.0);
  std::array<std::size_t, net::Prefix::kMaxLength + 1> histogram{};
  for (const auto& entry : internet_table().entries()) {
    ++histogram[static_cast<std::size_t>(entry.prefix.length())];
  }
  for (int len = 0; len <= net::Prefix::kMaxLength; ++len) {
    const double expected = weights[static_cast<std::size_t>(len)] / weight_sum;
    const double observed =
        static_cast<double>(histogram[static_cast<std::size_t>(len)]) /
        static_cast<double>(kInternetSize);
    EXPECT_NEAR(observed, expected, 0.01) << "length /" << len;
  }
  // The BGP-shaped mass concentration survives the capacity caps.
  EXPECT_GT(histogram[24], kInternetSize / 2);
}

TEST(ScaleTableGen, NoDuplicatePrefixes) {
  std::vector<std::uint64_t> keys;
  keys.reserve(kInternetSize);
  for (const auto& entry : internet_table().entries()) {
    keys.push_back((std::uint64_t{entry.prefix.bits()} << 6) |
                   static_cast<std::uint64_t>(entry.prefix.length()));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(ScaleTableGen, SeedReproducibleAtOneMillion) {
  EXPECT_EQ(net::make_rt_internet(kInternetSize), internet_table());
}

// --- Differential lookup fuzz on a sampled slice, every trie kind ---

TEST(ScaleDifferential, SampledSliceAllV4Kinds) {
  const net::RouteTable slice = sampled_slice(internet_table(), 20);
  const auto oracle = trie::build_lpm(trie::TrieKind::kBinary, slice);
  const trie::TrieKind kinds[] = {trie::TrieKind::kDp, trie::TrieKind::kLulea,
                                  trie::TrieKind::kLc, trie::TrieKind::kGupta,
                                  trie::TrieKind::kStride};
  std::vector<net::Ipv4Addr> addrs;
  std::mt19937_64 rng(0x5ca1e);
  std::uniform_int_distribution<std::size_t> pick(0, slice.size() - 1);
  for (int i = 0; i < 10'000; ++i) {
    // Half the probes land inside sampled prefixes (deep matches), half
    // are uniform (mostly default-route territory at a 50k slice).
    addrs.push_back(i % 2 == 0
                        ? net::random_address_in(
                              slice.entries()[pick(rng)].prefix, rng)
                        : net::Ipv4Addr{static_cast<std::uint32_t>(rng())});
  }
  for (const trie::TrieKind kind : kinds) {
    const auto trie = trie::build_lpm(kind, slice);
    for (const net::Ipv4Addr addr : addrs) {
      ASSERT_EQ(trie->lookup(addr), oracle->lookup(addr))
          << trie->name() << " addr=" << addr.value();
    }
  }
}

TEST(ScaleDifferential, SampledSliceV6Kinds) {
  const net::RouteTable6 table = net::make_rt6_internet(220'000);
  ASSERT_EQ(table.size(), 220'000u);
  std::vector<net::RouteEntry6> entries;
  for (std::size_t i = 0; i < table.entries().size(); i += 10) {
    entries.push_back(table.entries()[i]);
  }
  const net::RouteTable6 slice(std::move(entries));
  const trie::BinaryTrie6 oracle(slice);
  const trie::LcTrie6 lc(slice);
  const trie::DpTrie6 dp(slice);
  std::mt19937_64 rng(0x5ca1e6);
  std::uniform_int_distribution<std::size_t> pick(0, slice.size() - 1);
  for (int i = 0; i < 10'000; ++i) {
    const net::Ipv6Addr addr =
        i % 2 == 0
            ? net::random_address_in6(slice.entries()[pick(rng)].prefix, rng)
            : net::Ipv6Addr{rng(), rng()};
    const net::NextHop expected = oracle.lookup(addr);
    ASSERT_EQ(lc.lookup(addr), expected);
    ASSERT_EQ(dp.lookup(addr), expected);
  }
}

// --- Bulk builders must reproduce the per-entry structures exactly ---

TEST(ScaleBulkBuild, DpSpineBuildMatchesShuffledInserts) {
  const net::RouteTable slice = sampled_slice(internet_table(), 50);
  const trie::DpTrie bulk(slice);
  trie::DpTrie incremental{net::RouteTable{}};
  std::vector<net::RouteEntry> feed(slice.entries().begin(),
                                    slice.entries().end());
  std::mt19937_64 rng(0xfeed);
  std::shuffle(feed.begin(), feed.end(), rng);
  for (const auto& entry : feed) {
    incremental.insert(entry.prefix, entry.next_hop);
  }
  // The compressed structure is canonical, so both paths must agree on
  // node count (same nodes, different arena order) and on every lookup.
  EXPECT_EQ(bulk.node_count(), incremental.node_count());
  std::uniform_int_distribution<std::size_t> pick(0, slice.size() - 1);
  for (int i = 0; i < 10'000; ++i) {
    const net::Ipv4Addr addr =
        i % 2 == 0
            ? net::random_address_in(slice.entries()[pick(rng)].prefix, rng)
            : net::Ipv4Addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(bulk.lookup(addr), incremental.lookup(addr));
  }
}

TEST(ScaleBulkBuild, LuleaBulkMatchesReferencePaint) {
  const net::RouteTable slice = sampled_slice(internet_table(), 50);
  const trie::LuleaTrie bulk(slice, trie::LuleaBuildMode::kBulk);
  const trie::LuleaTrie reference(slice, trie::LuleaBuildMode::kReference);
  EXPECT_EQ(bulk.storage_bytes(), reference.storage_bytes());
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const net::Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(bulk.lookup(addr), reference.lookup(addr));
  }
}

// --- Wide-layout regressions ---

// The packed 4-byte LC node caps adr at 20 bits; at 1M+ prefixes the node
// array overflows it and the build must size-select the 8-byte wide
// layout. `packed_limit` shrinks the ceiling so the wide path is
// exercised without a million-node build; both layouts must agree.
TEST(ScaleWideLayout, LcTrieWidePathMatchesPacked) {
  const net::RouteTable slice = sampled_slice(internet_table(), 500);
  const trie::LcTrie packed(slice);
  const trie::LcTrie wide(slice, 0.25, 16, /*packed_limit=*/64);
  EXPECT_FALSE(packed.wide_layout());
  ASSERT_TRUE(wide.wide_layout());
  EXPECT_EQ(wide.node_count(), packed.node_count());
  // 8-byte nodes double the node arena relative to the packed 4-byte one.
  EXPECT_GT(wide.storage_bytes(), packed.storage_bytes());
  std::mt19937_64 rng(9);
  std::vector<net::Ipv4Addr> addrs;
  for (int i = 0; i < 10'000; ++i) {
    addrs.push_back(net::Ipv4Addr{static_cast<std::uint32_t>(rng())});
  }
  std::vector<net::NextHop> from_packed(addrs.size()), from_wide(addrs.size());
  packed.lookup_batch(addrs.data(), addrs.size(), from_packed.data());
  wide.lookup_batch(addrs.data(), addrs.size(), from_wide.data());
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    ASSERT_EQ(from_wide[i], from_packed[i]) << addrs[i].value();
    ASSERT_EQ(packed.lookup(addrs[i]), from_packed[i]);
    ASSERT_EQ(wide.lookup(addrs[i]), from_packed[i]);
  }
}

// The 16-bit Gupta entry holds 15-bit next-hop ids; a table with 2^15+
// distinct hops (internet-scale peering) must select the 32-bit layout
// and still resolve correctly. The pre-widening code threw length_error
// here — this is the overflow regression.
TEST(ScaleWideLayout, GuptaWideEntriesHoldLargeNextHopSpace) {
  std::vector<net::RouteEntry> entries;
  constexpr std::uint32_t kPrefixes = 40'000;  // > 2^15 - 1 distinct hops
  entries.reserve(kPrefixes);
  for (std::uint32_t i = 0; i < kPrefixes; ++i) {
    const std::uint32_t bits = (std::uint32_t{10} << 24) | (i << 8);
    entries.push_back(
        net::RouteEntry{net::Prefix(net::Ipv4Addr{bits}, 24), i + 1});
  }
  const net::RouteTable table(std::move(entries));
  const trie::GuptaTrie gupta(table);
  ASSERT_TRUE(gupta.wide_layout());
  const auto oracle = trie::build_lpm(trie::TrieKind::kBinary, table);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint32_t in_range =
        (std::uint32_t{10} << 24) |
        (static_cast<std::uint32_t>(rng()) & 0x00ffffffu);
    const net::Ipv4Addr addr{i % 4 == 0 ? static_cast<std::uint32_t>(rng())
                                        : in_range};
    ASSERT_EQ(gupta.lookup(addr), oracle->lookup(addr)) << addr.value();
  }
}

// A paper-sized table must keep the original 16-bit entries (and thus the
// paper's 32 MB level-1 figure) — widening is strictly opt-in by size.
TEST(ScaleWideLayout, PaperSizedGuptaStaysNarrow) {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 702;
  const trie::GuptaTrie gupta(net::generate_table(config));
  EXPECT_FALSE(gupta.wide_layout());
}

}  // namespace
