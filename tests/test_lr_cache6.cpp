// BasicLrCache<Ipv6Addr>: the LR-cache over 128-bit addresses, as the IPv6
// router uses it. Mechanics are shared with the IPv4 instantiation; these
// tests pin the v6-specific pieces (set indexing from the low half, full
// 128-bit tag comparison, Prefix6 selective invalidation).
#include <gtest/gtest.h>

#include "cache/basic_lr_cache.h"
#include "net/prefix6.h"

namespace {

using namespace spal;
using cache::BasicLrCache;
using cache::LrCacheConfig;
using cache::Origin;
using cache::ProbeState;
using net::Ipv6Addr;

using Cache6 = BasicLrCache<Ipv6Addr>;

LrCacheConfig config16() {
  LrCacheConfig config;
  config.blocks = 16;
  config.victim_blocks = 0;
  return config;
}

TEST(LrCache6, MissInsertHit) {
  Cache6 cache(config16());
  const Ipv6Addr a{0x20010DB800000000ULL, 42};
  EXPECT_EQ(cache.probe(a, 0).state, ProbeState::kMiss);
  cache.insert(a, 7, Origin::kLocal, 1);
  const auto result = cache.probe(a, 2);
  EXPECT_EQ(result.state, ProbeState::kHit);
  EXPECT_EQ(result.next_hop, 7u);
}

TEST(LrCache6, TagComparesFullAddress) {
  // Two addresses agreeing on the set-index bits (low 32) but differing in
  // the high half must not alias.
  Cache6 cache(config16());
  const Ipv6Addr a{0x2001000000000000ULL, 5};
  const Ipv6Addr b{0x2002000000000000ULL, 5};
  cache.insert(a, 1, Origin::kLocal, 0);
  EXPECT_EQ(cache.probe(b, 1).state, ProbeState::kMiss);
  cache.insert(b, 2, Origin::kLocal, 2);
  EXPECT_EQ(cache.probe(a, 3).next_hop, 1u);
  EXPECT_EQ(cache.probe(b, 4).next_hop, 2u);
}

TEST(LrCache6, SetIndexComesFromLowHalf) {
  // Addresses with distinct low-word set bits land in different sets, so a
  // same-origin quota in one set does not evict across sets.
  Cache6 cache(config16());  // 4 sets, assoc 4, LOC ways 2
  for (std::uint64_t set = 0; set < 4; ++set) {
    cache.insert(Ipv6Addr{0x2001000000000000ULL, set}, 1, Origin::kLocal, 1);
    cache.insert(Ipv6Addr{0x2002000000000000ULL, set}, 2, Origin::kLocal, 2);
  }
  for (std::uint64_t set = 0; set < 4; ++set) {
    EXPECT_EQ(cache.probe(Ipv6Addr{0x2001000000000000ULL, set}, 10).state,
              ProbeState::kHit);
    EXPECT_EQ(cache.probe(Ipv6Addr{0x2002000000000000ULL, set}, 11).state,
              ProbeState::kHit);
  }
}

TEST(LrCache6, WaitingAndFill) {
  Cache6 cache(config16());
  const Ipv6Addr a{0x20010DB800000000ULL, 9};
  ASSERT_TRUE(cache.reserve(a, Origin::kRemote, 0));
  EXPECT_EQ(cache.probe(a, 1).state, ProbeState::kWaiting);
  EXPECT_TRUE(cache.fill(a, 3, 2));
  EXPECT_EQ(cache.probe(a, 3).next_hop, 3u);
}

TEST(LrCache6, FillAfterFlushIsOrphan) {
  // A reply that lands after a table update flushed its W=1 block must be
  // reported (not silently re-create a block) — same contract as IPv4.
  Cache6 cache(config16());
  const Ipv6Addr a{0x20010DB800000000ULL, 9};
  ASSERT_TRUE(cache.reserve(a, Origin::kRemote, 0));
  cache.flush();
  EXPECT_FALSE(cache.fill(a, 7, 1));
  EXPECT_EQ(cache.stats().orphan_fills, 1u);
  EXPECT_EQ(cache.probe(a, 2).state, ProbeState::kMiss);
}

TEST(LrCache6, QuotaEntirelyWaitingFailsReservation) {
  // Both ways of an origin pinned by W=1 blocks: a further reservation must
  // fail (and be counted) rather than evict an in-flight block.
  Cache6 cache(config16());  // 4 sets, assoc 4, γ = 50%: 2 REM ways
  const Ipv6Addr r1{0x2001000000000000ULL, 0x20};
  const Ipv6Addr r2{0x2002000000000000ULL, 0x20};  // same set
  const Ipv6Addr r3{0x2003000000000000ULL, 0x20};
  ASSERT_TRUE(cache.reserve(r1, Origin::kRemote, 0));
  ASSERT_TRUE(cache.reserve(r2, Origin::kRemote, 1));
  EXPECT_FALSE(cache.reserve(r3, Origin::kRemote, 2));
  EXPECT_EQ(cache.stats().failed_reservations, 1u);
  EXPECT_EQ(cache.probe(r1, 3).state, ProbeState::kWaiting);
  EXPECT_EQ(cache.probe(r2, 4).state, ProbeState::kWaiting);
}

TEST(LrCache6, CancelWaitingReclaimsBlock) {
  Cache6 cache(config16());
  const Ipv6Addr r1{0x2001000000000000ULL, 0x20};
  const Ipv6Addr r2{0x2002000000000000ULL, 0x20};
  const Ipv6Addr r3{0x2003000000000000ULL, 0x20};
  ASSERT_TRUE(cache.reserve(r1, Origin::kRemote, 0));
  ASSERT_TRUE(cache.reserve(r2, Origin::kRemote, 1));
  ASSERT_FALSE(cache.reserve(r3, Origin::kRemote, 2));
  EXPECT_TRUE(cache.cancel_waiting(r1));
  EXPECT_FALSE(cache.cancel_waiting(r1));  // already gone
  EXPECT_EQ(cache.stats().cancelled_reservations, 1u);
  EXPECT_TRUE(cache.reserve(r3, Origin::kRemote, 3));  // quota released
}

TEST(LrCache6, Prefix6SelectiveInvalidation) {
  Cache6 cache(config16());
  const Ipv6Addr inside{0x20010DB800000000ULL, 1};
  const Ipv6Addr outside{0x20010DB900000000ULL, 1};
  cache.insert(inside, 1, Origin::kLocal, 0);
  cache.insert(outside, 2, Origin::kLocal, 1);
  const net::Prefix6 changed(Ipv6Addr{0x20010DB800000000ULL, 0}, 32);
  EXPECT_EQ(cache.invalidate_matching(changed), 1u);
  EXPECT_EQ(cache.probe(inside, 2).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(outside, 3).state, ProbeState::kHit);
}

TEST(LrCache6, GammaQuotasApply) {
  LrCacheConfig config = config16();
  config.remote_fraction = 0.25;  // 1 REM way per set
  Cache6 cache(config);
  const Ipv6Addr r1{0x2001000000000000ULL, 0x10};
  const Ipv6Addr r2{0x2002000000000000ULL, 0x10};  // same set
  cache.insert(r1, 1, Origin::kRemote, 0);
  cache.insert(r2, 2, Origin::kRemote, 1);
  EXPECT_EQ(cache.probe(r1, 2).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(r2, 3).state, ProbeState::kHit);
  EXPECT_EQ(cache.count_origin(Origin::kRemote), 1u);
}

TEST(LrCache6, VictimCacheWorks) {
  LrCacheConfig config = config16();
  config.blocks = 4;  // one set, LOC ways 2
  config.victim_blocks = 4;
  Cache6 cache(config);
  const Ipv6Addr a{0x2001000000000000ULL, 0};
  const Ipv6Addr b{0x2002000000000000ULL, 0};
  const Ipv6Addr c{0x2003000000000000ULL, 0};
  cache.insert(a, 1, Origin::kLocal, 0);
  cache.insert(b, 2, Origin::kLocal, 1);
  cache.insert(c, 3, Origin::kLocal, 2);  // evicts a into the victim cache
  const auto result = cache.probe(a, 3);
  EXPECT_EQ(result.state, ProbeState::kHit);
  EXPECT_EQ(cache.stats().victim_hits, 1u);
}

}  // namespace
