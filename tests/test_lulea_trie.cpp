#include "trie/lulea_trie.h"

#include <gtest/gtest.h>

#include "net/table_gen.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using trie::LuleaTrie;
using trie::MemAccessCounter;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(LuleaTrie, Level1OnlyLookupTakesFourAccesses) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  const LuleaTrie trie(table);
  MemAccessCounter counter;
  (void)trie.lookup_counted(Ipv4Addr{0x0A000001u}, counter);
  EXPECT_EQ(counter.total(), 4u);  // codeword + base + maptable + pointer
}

TEST(LuleaTrie, ThreeLevelSparseLookupTakesEightAccesses) {
  RouteTable table;
  table.add(p("10.1.2.0/24"), 1);
  table.add(p("10.1.2.128/25"), 2);  // forces a level-3 chunk
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.sparse_chunk_count(), 2u);  // both chunks have few heads
  MemAccessCounter counter;
  (void)trie.lookup_counted(Ipv4Addr{0x0A010280u}, counter);
  // 4 (level 1) + 2 (sparse level 2) + 2 (sparse level 3).
  EXPECT_EQ(counter.total(), 8u);
}

TEST(LuleaTrie, DenseChunkLookupTakesFourAccessesPerLevel) {
  // >8 interval heads force the dense codeword form in the level-2 chunk.
  RouteTable table;
  for (std::uint32_t i = 0; i < 24; i += 2) {
    table.add(Prefix(Ipv4Addr{0x0A010000u + (i << 8)}, 24),
              static_cast<net::NextHop>(i));
  }
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.sparse_chunk_count(), 0u);
  MemAccessCounter counter;
  (void)trie.lookup_counted(Ipv4Addr{0x0A010201u}, counter);
  EXPECT_EQ(counter.total(), 8u);  // 4 (level 1) + 4 (dense level 2)
}

TEST(LuleaTrie, ChunkCountsFollowPrefixPlacement) {
  RouteTable table;
  table.add(p("10.1.0.0/16"), 1);       // level 1 only
  table.add(p("10.2.3.0/24"), 2);       // one level-2 chunk
  table.add(p("10.2.4.0/24"), 3);       // same level-2 chunk (same /16)
  table.add(p("20.1.1.0/24"), 4);       // second level-2 chunk
  table.add(p("20.1.1.128/26"), 5);     // one level-3 chunk
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.level2_chunk_count(), 2u);
  EXPECT_EQ(trie.level3_chunk_count(), 1u);
}

TEST(LuleaTrie, LeafPushingPreservesShorterPrefixInsideChunk) {
  // The /16 must still answer for addresses in its /16 that the /24 does
  // not cover, even though the /16's slot became a chunk pointer.
  RouteTable table;
  table.add(p("10.1.0.0/16"), 1);
  table.add(p("10.1.2.0/24"), 2);
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010201u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010301u}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010101u}), 1u);
}

TEST(LuleaTrie, LeafPushingTwoLevelsDeep) {
  RouteTable table;
  table.add(p("10.1.0.0/16"), 1);
  table.add(p("10.1.2.0/24"), 2);
  table.add(p("10.1.2.64/26"), 3);
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010241u}), 3u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010201u}), 2u);  // /24 default in L3 chunk
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010401u}), 1u);
}

TEST(LuleaTrie, RunCompressionMergesEqualNeighbours) {
  // A single /8 covers 256 level-1 slots but needs very few pointers.
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  const LuleaTrie a(table);
  table.add(p("11.0.0.0/8"), 1);  // same next hop: runs merge across /8s
  const LuleaTrie b(table);
  EXPECT_EQ(a.storage_bytes(), b.storage_bytes());
}

TEST(LuleaTrie, StorageFarBelowDenseTable) {
  net::TableGenConfig config;
  config.size = 40'000;
  config.seed = 41;
  const LuleaTrie trie(net::generate_table(config));
  // The paper's Lulea figure for the 41k-prefix RT_1 is ~260 KB; allow a
  // generous factor for our uniform-chunk variant, but it must be far below
  // the 65536-entry dense level-1 alternative (~several MB).
  EXPECT_LT(trie.storage_bytes(), 2u * 1024 * 1024);
  EXPECT_GT(trie.storage_bytes(), 50u * 1024);
}

TEST(LuleaTrie, MeanAccessesInPaperBand) {
  net::TableGenConfig config;
  config.size = 40'000;
  config.seed = 42;
  const RouteTable table = net::generate_table(config);
  const LuleaTrie trie(table);
  const double mean = trie::mean_accesses_per_lookup(trie, table, 5'000, 2);
  // Paper Sec. 5.1: 6.2 (RT_1) to 6.6 (RT_2); our sampling is
  // prefix-weighted so allow the 4..12 structural envelope.
  EXPECT_GE(mean, 4.0);
  EXPECT_LE(mean, 12.0);
}

TEST(LuleaTrie, DefaultRouteReachesEverySlot) {
  RouteTable table;
  table.add(p("0.0.0.0/0"), 9);
  table.add(p("10.1.2.0/24"), 1);
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0xFFFFFFFFu}), 9u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010201u}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010301u}), 9u);
}

TEST(LuleaTrie, SlashSixteenBoundaries) {
  RouteTable table;
  table.add(p("10.1.0.0/16"), 1);
  table.add(p("10.2.0.0/16"), 2);
  const LuleaTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A01FFFFu}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A020000u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A00FFFFu}), net::kNoRoute);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A030000u}), net::kNoRoute);
}

TEST(LuleaTrie, NameIsLulea) {
  EXPECT_EQ(LuleaTrie(RouteTable{}).name(), "lulea");
}

}  // namespace
