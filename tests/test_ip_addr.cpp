#include "net/ip_addr.h"

#include <gtest/gtest.h>

namespace {

using spal::net::Ipv4Addr;
using spal::net::Ipv6Addr;

TEST(Ipv4Addr, DefaultIsZero) {
  EXPECT_EQ(Ipv4Addr{}.value(), 0u);
}

TEST(Ipv4Addr, FromOctetsPacksBigEndian) {
  EXPECT_EQ(Ipv4Addr::from_octets(192, 0, 2, 1).value(), 0xC0000201u);
  EXPECT_EQ(Ipv4Addr::from_octets(255, 255, 255, 255).value(), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4Addr::from_octets(0, 0, 0, 1).value(), 1u);
}

TEST(Ipv4Addr, ParseValid) {
  const auto addr = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0x0A010203u);
}

TEST(Ipv4Addr, ParseBoundaryOctets) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Addr, ParseRejectsOctetOver255) {
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.999").has_value());
}

TEST(Ipv4Addr, ParseRejectsMissingOctets) {
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
}

TEST(Ipv4Addr, ParseRejectsTrailingJunk) {
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4 ").has_value());
}

TEST(Ipv4Addr, ParseRejectsNonNumeric) {
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..2.3").has_value());
}

TEST(Ipv4Addr, ToStringRoundTrips) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "255.255.255.255", "192.0.2.255"}) {
    const auto addr = Ipv4Addr::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
  }
}

TEST(Ipv4Addr, BitZeroIsMostSignificant) {
  const Ipv4Addr addr{0x80000000u};
  EXPECT_EQ(addr.bit(0), 1);
  for (int i = 1; i < 32; ++i) EXPECT_EQ(addr.bit(i), 0) << i;
}

TEST(Ipv4Addr, BitThirtyOneIsLeastSignificant) {
  const Ipv4Addr addr{1u};
  EXPECT_EQ(addr.bit(31), 1);
  for (int i = 0; i < 31; ++i) EXPECT_EQ(addr.bit(i), 0) << i;
}

TEST(Ipv4Addr, BitsExtractsMsbAlignedField) {
  const Ipv4Addr addr = Ipv4Addr::from_octets(0xAB, 0xCD, 0xEF, 0x12);
  EXPECT_EQ(addr.bits(0, 8), 0xABu);
  EXPECT_EQ(addr.bits(8, 8), 0xCDu);
  EXPECT_EQ(addr.bits(16, 8), 0xEFu);
  EXPECT_EQ(addr.bits(24, 8), 0x12u);
  EXPECT_EQ(addr.bits(0, 16), 0xABCDu);
  EXPECT_EQ(addr.bits(0, 32), 0xABCDEF12u);
  EXPECT_EQ(addr.bits(4, 4), 0xBu);
}

TEST(Ipv4Addr, BitsWithZeroCountIsZero) {
  EXPECT_EQ(Ipv4Addr{0xFFFFFFFFu}.bits(5, 0), 0u);
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr{1u}, Ipv4Addr{2u});
  EXPECT_EQ(Ipv4Addr{7u}, Ipv4Addr{7u});
  EXPECT_GT(Ipv4Addr{0x80000000u}, Ipv4Addr{0x7FFFFFFFu});
}

TEST(Ipv6Addr, BitAccessSpansHalves) {
  const Ipv6Addr addr{0x8000000000000000ULL, 1ULL};
  EXPECT_EQ(addr.bit(0), 1);
  EXPECT_EQ(addr.bit(1), 0);
  EXPECT_EQ(addr.bit(63), 0);
  EXPECT_EQ(addr.bit(64), 0);
  EXPECT_EQ(addr.bit(127), 1);
}

TEST(Ipv6Addr, ToStringFullForm) {
  const Ipv6Addr addr{0x20010DB800000000ULL, 0x0000000000000001ULL};
  EXPECT_EQ(addr.to_string(), "2001:0db8:0000:0000:0000:0000:0000:0001");
}

TEST(Ipv6Addr, Ordering) {
  EXPECT_LT(Ipv6Addr(0, 1), Ipv6Addr(1, 0));
  EXPECT_EQ(Ipv6Addr(2, 3), Ipv6Addr(2, 3));
}

}  // namespace
