// Cross-trie correctness: every LPM implementation must agree with the
// binary-trie oracle on random and adversarial tables. Parameterized over
// (algorithm, table shape).
#include <gtest/gtest.h>

#include <random>

#include "net/table_gen.h"
#include "trie/binary_trie.h"
#include "trie/lpm.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using trie::TrieKind;

struct TableCase {
  const char* label;
  std::size_t size;
  std::uint64_t seed;
  double nested_fraction;
};

const TableCase kTables[] = {
    {"small", 200, 1, 0.35},
    {"medium", 5'000, 2, 0.35},
    {"large", 40'000, 3, 0.35},
    {"flat", 5'000, 4, 0.0},
    {"deeply_nested", 5'000, 5, 0.8},
};

const TrieKind kKinds[] = {TrieKind::kDp, TrieKind::kLulea, TrieKind::kLc,
                           TrieKind::kGupta, TrieKind::kStride};

class TrieOracleTest
    : public ::testing::TestWithParam<std::tuple<TrieKind, TableCase>> {
 protected:
  RouteTable make_table() const {
    const TableCase& c = std::get<1>(GetParam());
    net::TableGenConfig config;
    config.size = c.size;
    config.seed = c.seed;
    config.nested_fraction = c.nested_fraction;
    return net::generate_table(config);
  }
};

TEST_P(TrieOracleTest, AgreesWithOracleOnUniformAddresses) {
  const RouteTable table = make_table();
  const trie::BinaryTrie oracle(table);
  const auto index = trie::build_lpm(std::get<0>(GetParam()), table);
  std::mt19937_64 rng(0xfeed);
  for (int i = 0; i < 20'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(index->lookup(addr), oracle.lookup(addr))
        << index->name() << " disagrees at " << addr.to_string();
  }
}

TEST_P(TrieOracleTest, AgreesWithOracleOnMatchedAddresses) {
  const RouteTable table = make_table();
  const trie::BinaryTrie oracle(table);
  const auto index = trie::build_lpm(std::get<0>(GetParam()), table);
  std::mt19937_64 rng(0xbead);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 20'000; ++i) {
    const auto addr =
        net::random_address_in(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(index->lookup(addr), oracle.lookup(addr))
        << index->name() << " disagrees at " << addr.to_string();
  }
}

TEST_P(TrieOracleTest, AgreesOnPrefixBoundaries) {
  // Range endpoints are where interval/run logic goes wrong first.
  const RouteTable table = make_table();
  const trie::BinaryTrie oracle(table);
  const auto index = trie::build_lpm(std::get<0>(GetParam()), table);
  std::size_t checked = 0;
  for (const net::RouteEntry& e : table.entries()) {
    if (++checked > 4000) break;
    for (const Ipv4Addr addr :
         {e.prefix.range_first(), e.prefix.range_last(),
          Ipv4Addr{e.prefix.range_first().value() == 0
                       ? 0u
                       : e.prefix.range_first().value() - 1},
          Ipv4Addr{e.prefix.range_last().value() == 0xFFFFFFFFu
                       ? 0xFFFFFFFFu
                       : e.prefix.range_last().value() + 1}}) {
      ASSERT_EQ(index->lookup(addr), oracle.lookup(addr))
          << index->name() << " disagrees at " << addr.to_string();
    }
  }
}

TEST_P(TrieOracleTest, CountedLookupReturnsSameResult) {
  const RouteTable table = make_table();
  const auto index = trie::build_lpm(std::get<0>(GetParam()), table);
  std::mt19937_64 rng(0xcafe);
  trie::MemAccessCounter counter;
  for (int i = 0; i < 2'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(index->lookup_counted(addr, counter), index->lookup(addr));
  }
  EXPECT_GT(counter.total(), 0u);
}

TEST_P(TrieOracleTest, StorageIsPositiveAndBounded) {
  const RouteTable table = make_table();
  const auto index = trie::build_lpm(std::get<0>(GetParam()), table);
  EXPECT_GT(index->storage_bytes(), 0u);
  const TrieKind kind = std::get<0>(GetParam());
  if (kind == TrieKind::kGupta) {
    // The hardware scheme's level-1 table alone is 32 MB (Sec. 2.1).
    EXPECT_GE(index->storage_bytes(), 32u * 1024 * 1024);
  } else if (kind == TrieKind::kStride) {
    // Uncompressed multibit expansion: bounded but large — the memory cost
    // the Lulea compression exists to avoid.
    EXPECT_LT(index->storage_bytes(), 128u * 1024 * 1024);
  } else {
    // Compressed software tries stay far below the hardware footprint.
    EXPECT_LT(index->storage_bytes(), 32u * 1024 * 1024);
  }
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<TrieKind, TableCase>>& info) {
  return std::string(trie::to_string(std::get<0>(info.param))) + "_" +
         std::get<1>(info.param).label;
}

INSTANTIATE_TEST_SUITE_P(AllTriesAllTables, TrieOracleTest,
                         ::testing::Combine(::testing::ValuesIn(kKinds),
                                            ::testing::ValuesIn(kTables)),
                         case_name);

// --- Hand-built adversarial tables shared by all algorithms ---

class TrieEdgeCaseTest : public ::testing::TestWithParam<TrieKind> {};

TEST_P(TrieEdgeCaseTest, EmptyTable) {
  const auto index = trie::build_lpm(GetParam(), RouteTable{});
  EXPECT_EQ(index->lookup(Ipv4Addr{123u}), net::kNoRoute);
}

TEST_P(TrieEdgeCaseTest, OnlyDefaultRoute) {
  RouteTable table;
  table.add(*Prefix::parse("0.0.0.0/0"), 7);
  const auto index = trie::build_lpm(GetParam(), table);
  EXPECT_EQ(index->lookup(Ipv4Addr{0u}), 7u);
  EXPECT_EQ(index->lookup(Ipv4Addr{0xFFFFFFFFu}), 7u);
}

TEST_P(TrieEdgeCaseTest, SingleHostRoute) {
  RouteTable table;
  table.add(*Prefix::parse("1.2.3.4/32"), 5);
  const auto index = trie::build_lpm(GetParam(), table);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x01020304u}), 5u);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x01020305u}), net::kNoRoute);
}

TEST_P(TrieEdgeCaseTest, NestedChainAllLengths) {
  // One prefix at every length along a single path.
  RouteTable table;
  for (int len = 0; len <= 32; ++len) {
    table.add(Prefix(Ipv4Addr{0xAAAAAAAAu}, len), static_cast<net::NextHop>(len));
  }
  const trie::BinaryTrie oracle(table);
  const auto index = trie::build_lpm(GetParam(), table);
  std::mt19937_64 rng(4);
  EXPECT_EQ(index->lookup(Ipv4Addr{0xAAAAAAAAu}), 32u);
  for (int i = 0; i < 5'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(index->lookup(addr), oracle.lookup(addr)) << addr.to_string();
  }
}

TEST_P(TrieEdgeCaseTest, AdjacentSiblingsDifferentHops) {
  RouteTable table;
  table.add(*Prefix::parse("10.0.0.0/24"), 1);
  table.add(*Prefix::parse("10.0.1.0/24"), 2);
  table.add(*Prefix::parse("10.0.2.0/23"), 3);
  const auto index = trie::build_lpm(GetParam(), table);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x0A000001u}), 1u);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x0A000101u}), 2u);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x0A000201u}), 3u);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x0A000301u}), 3u);
  EXPECT_EQ(index->lookup(Ipv4Addr{0x0A000401u}), net::kNoRoute);
}

TEST_P(TrieEdgeCaseTest, StrideBoundaryPrefixes) {
  // Lengths straddling the Lulea 16/24 level boundaries and LC-trie skips.
  RouteTable table;
  table.add(*Prefix::parse("10.1.0.0/16"), 1);
  table.add(*Prefix::parse("10.1.0.0/17"), 2);
  table.add(*Prefix::parse("10.1.0.0/24"), 3);
  table.add(*Prefix::parse("10.1.0.0/25"), 4);
  table.add(*Prefix::parse("10.1.0.128/25"), 5);
  const trie::BinaryTrie oracle(table);
  const auto index = trie::build_lpm(GetParam(), table);
  for (std::uint32_t a = 0x0A100000u; a <= 0x0A120000u; a += 0x37) {
    ASSERT_EQ(index->lookup(Ipv4Addr{a}), oracle.lookup(Ipv4Addr{a}))
        << Ipv4Addr{a}.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TrieEdgeCaseTest, ::testing::ValuesIn(kKinds),
                         [](const ::testing::TestParamInfo<TrieKind>& info) {
                           return std::string(trie::to_string(info.param));
                         });

}  // namespace
