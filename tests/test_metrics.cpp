// Property tests for LatencyStats against a sorted-vector oracle.
//
// The oracle for percentile(q) over n samples is the rank-th order
// statistic with rank = clamp(ceil(q*n), 1, n), 1-indexed. Inside the
// linear tier (1-cycle buckets) LatencyStats must match it *exactly*;
// the geometric overflow tier must stay within its documented relative
// error and never exceed the true worst case.
//
// Regression anchors: the old floor-based rank reported "0 cycles" for
// percentile(0.99) over a single sample, and the old merge() truncated
// the other histogram's tail buckets away.
#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/metrics.h"

namespace {

using spal::sim::LatencyStats;

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 1.0};

std::uint64_t oracle_percentile(std::vector<std::uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const auto n = static_cast<std::uint64_t>(values.size());
  const auto rank = std::min<std::uint64_t>(
      n, std::max<std::uint64_t>(
             1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)))));
  return values[rank - 1];
}

/// Stats instance whose linear tier covers every value the tests record,
/// so percentiles are exact by construction.
LatencyStats exact_stats() { return LatencyStats(std::size_t{1} << 20); }

void expect_matches_oracle(const std::vector<std::uint64_t>& values) {
  LatencyStats stats = exact_stats();
  for (const std::uint64_t v : values) stats.record(v);
  for (const double q : kQuantiles) {
    EXPECT_EQ(stats.percentile(q), oracle_percentile(values, q))
        << "q=" << q << " n=" << values.size();
  }
}

TEST(LatencyStatsOracle, SingleSampleEveryQuantile) {
  // Regression: floor-based rank turned ceil(0.99 * 1) into rank 0 and
  // reported 0 cycles for a 7-cycle lookup.
  LatencyStats stats = exact_stats();
  stats.record(7);
  for (const double q : {0.01, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(stats.percentile(q), 7u) << "q=" << q;
  }
}

TEST(LatencyStatsOracle, UniformRandomSweepOverCounts) {
  std::mt19937_64 rng(0x5ba1);
  std::uniform_int_distribution<std::uint64_t> dist(0, (1u << 20) - 1);
  for (const std::size_t n :
       {1u, 2u, 3u, 7u, 10u, 99u, 100u, 101u, 1000u, 4096u, 10000u}) {
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) v = dist(rng);
    expect_matches_oracle(values);
  }
}

TEST(LatencyStatsOracle, AdversarialDistributions) {
  // All-equal: every quantile is the single value.
  expect_matches_oracle(std::vector<std::uint64_t>(1000, 42));

  // Two-point mass straddling the median.
  {
    std::vector<std::uint64_t> values(500, 1);
    values.insert(values.end(), 500, 100000);
    expect_matches_oracle(values);
  }

  // Heavy tail: 99% at 8 cycles, 1% spread high — exercises the exact
  // p99/p100 boundary.
  {
    std::vector<std::uint64_t> values(9900, 8);
    for (std::uint64_t i = 0; i < 100; ++i) values.push_back(900000 + i * 7);
    expect_matches_oracle(values);
  }

  // Strictly ascending (every bucket count is 1).
  {
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < 2500; ++i) values.push_back(i * 3);
    expect_matches_oracle(values);
  }

  // Zeros are legal latencies and must not disappear.
  {
    std::vector<std::uint64_t> values(10, 0);
    values.push_back(5);
    expect_matches_oracle(values);
  }
}

TEST(LatencyStatsOracle, CeilRankBoundaries) {
  LatencyStats stats = exact_stats();
  for (std::uint64_t v = 1; v <= 100; ++v) stats.record(v);
  EXPECT_EQ(stats.percentile(0.0), 1u);     // rank clamps up to 1
  EXPECT_EQ(stats.percentile(0.01), 1u);    // ceil(1) = 1
  EXPECT_EQ(stats.percentile(0.5), 50u);    // ceil(50) = 50
  EXPECT_EQ(stats.percentile(0.501), 51u);  // ceil(50.1) = 51
  EXPECT_EQ(stats.percentile(0.99), 99u);
  EXPECT_EQ(stats.percentile(0.991), 100u);  // ceil(99.1) = 100
  EXPECT_EQ(stats.percentile(1.0), 100u);
}

TEST(LatencyStatsGeoTier, BoundedRelativeError) {
  // Values far beyond the linear tier: reported quantiles must stay within
  // the documented 2^-6 relative error of the oracle and never exceed the
  // recorded worst.
  std::mt19937_64 rng(77);
  std::uniform_int_distribution<std::uint64_t> dist(1u << 12, 1u << 30);
  LatencyStats stats;  // default 1024 linear buckets
  std::vector<std::uint64_t> values(5000);
  for (auto& v : values) {
    v = dist(rng);
    stats.record(v);
  }
  for (const double q : kQuantiles) {
    const double exact = static_cast<double>(oracle_percentile(values, q));
    const double reported = static_cast<double>(stats.percentile(q));
    EXPECT_LE(std::abs(reported - exact) / exact, 1.0 / 64.0) << "q=" << q;
    EXPECT_LE(stats.percentile(q), stats.worst_cycles()) << "q=" << q;
  }
  EXPECT_EQ(stats.percentile(1.0), stats.worst_cycles());
}

TEST(LatencyStatsGeoTier, MaxIsAlwaysExact) {
  LatencyStats stats(64);
  stats.record(3);
  stats.record(123'456'789);
  EXPECT_EQ(stats.worst_cycles(), 123'456'789u);
  EXPECT_EQ(stats.percentile(1.0), 123'456'789u);
  EXPECT_EQ(stats.percentile(0.5), 3u);
}

TEST(LatencyStatsMerge, PreservesCountsAndTail) {
  // Regression: merging a larger histogram into a smaller one used to drop
  // the buckets past the smaller size, losing tail counts entirely.
  LatencyStats small(64);
  LatencyStats big(4096);
  for (std::uint64_t v = 0; v < 64; ++v) small.record(v);
  for (std::uint64_t v = 1000; v < 1100; ++v) big.record(v);
  big.record(50'000'000);  // geo-tier sample

  small.merge(big);
  EXPECT_EQ(small.count(), 64u + 100u + 1u);
  EXPECT_EQ(small.worst_cycles(), 50'000'000u);
  EXPECT_EQ(small.percentile(1.0), 50'000'000u);
  // Median of the merged set: 165 samples, rank 83 -> the 19th sample of
  // the [1000, 1100) run = 1018, exact in big's linear tier and preserved
  // through the merge because small's linear tier grows to cover it.
  EXPECT_EQ(small.percentile(0.5), 1018u);
}

TEST(LatencyStatsMerge, MatchesOracleWhenTiersCover) {
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<std::uint64_t> dist(0, (1u << 20) - 1);
  LatencyStats a = exact_stats();
  LatencyStats b = exact_stats();
  std::vector<std::uint64_t> all;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = dist(rng);
    a.record(v);
    all.push_back(v);
  }
  for (int i = 0; i < 1700; ++i) {
    const std::uint64_t v = dist(rng);
    b.record(v);
    all.push_back(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.size());
  for (const double q : kQuantiles) {
    EXPECT_EQ(a.percentile(q), oracle_percentile(all, q)) << "q=" << q;
  }
}

TEST(LatencyStatsMerge, EmptyMergesAreNeutral) {
  LatencyStats a = exact_stats();
  a.record(10);
  LatencyStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.percentile(0.99), 10u);
  LatencyStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 1u);
  EXPECT_EQ(target.percentile(0.99), 10u);
}

}  // namespace
