#include "net/update_stream.h"

#include <gtest/gtest.h>

#include "net/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using namespace spal;
using net::RouteTable;
using net::TableUpdate;
using net::UpdateKind;
using net::UpdateStreamConfig;

RouteTable base_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 701;
  return net::generate_table(config);
}

TEST(UpdateStream, DeterministicPerSeed) {
  const RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 500;
  config.seed = 3;
  EXPECT_EQ(net::generate_update_stream(table, config),
            net::generate_update_stream(table, config));
  config.seed = 4;
  EXPECT_NE(net::generate_update_stream(table, UpdateStreamConfig{500, 3}),
            net::generate_update_stream(table, config));
}

TEST(UpdateStream, EveryUpdateAppliesCleanly) {
  RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 2'000;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    EXPECT_TRUE(net::apply_update(table, update));
  }
}

TEST(UpdateStream, KindMixTracksConfiguredFractions) {
  const RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 5'000;
  config.announce_fraction = 0.2;
  config.withdraw_fraction = 0.3;
  std::size_t announces = 0, withdraws = 0, changes = 0;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    switch (update.kind) {
      case UpdateKind::kAnnounce: ++announces; break;
      case UpdateKind::kWithdraw: ++withdraws; break;
      case UpdateKind::kHopChange: ++changes; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(announces) / 5'000.0, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(withdraws) / 5'000.0, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(changes) / 5'000.0, 0.5, 0.03);
}

TEST(UpdateStream, TableSizeEvolvesByAnnouncesMinusWithdraws) {
  RouteTable table = base_table();
  const std::size_t initial = table.size();
  UpdateStreamConfig config;
  config.count = 1'000;
  std::int64_t delta = 0;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    if (update.kind == UpdateKind::kAnnounce) ++delta;
    if (update.kind == UpdateKind::kWithdraw) --delta;
    net::apply_update(table, update);
  }
  EXPECT_EQ(static_cast<std::int64_t>(table.size()),
            static_cast<std::int64_t>(initial) + delta);
}

TEST(UpdateStream, WithdrawalsNameLivePrefixesOnly) {
  RouteTable table = base_table();
  for (const TableUpdate& update :
       net::generate_update_stream(table, UpdateStreamConfig{3'000, 9})) {
    if (update.kind == UpdateKind::kWithdraw) {
      EXPECT_TRUE(table.find(update.prefix).has_value())
          << update.prefix.to_string();
    }
    net::apply_update(table, update);
  }
}

TEST(UpdateStream, AnnouncementsAreNewPrefixes) {
  RouteTable table = base_table();
  for (const TableUpdate& update :
       net::generate_update_stream(table, UpdateStreamConfig{3'000, 10})) {
    if (update.kind == UpdateKind::kAnnounce) {
      EXPECT_FALSE(table.find(update.prefix).has_value())
          << update.prefix.to_string();
    }
    net::apply_update(table, update);
  }
}

TEST(UpdateStream, IncrementalBinaryTrieMatchesRebuild) {
  // Strong equivalence: applying the stream incrementally to a binary trie
  // gives the same LPM behaviour as rebuilding from the updated table.
  RouteTable table = base_table();
  trie::BinaryTrie incremental(table);
  const auto updates = net::generate_update_stream(table, UpdateStreamConfig{1'000, 11});
  for (const TableUpdate& update : updates) {
    net::apply_update(table, update);
    switch (update.kind) {
      case UpdateKind::kAnnounce:
      case UpdateKind::kHopChange:
        incremental.insert(update.prefix, update.next_hop);
        break;
      case UpdateKind::kWithdraw:
        EXPECT_TRUE(incremental.remove(update.prefix));
        break;
    }
  }
  const trie::BinaryTrie rebuilt(table);
  std::mt19937_64 rng(12);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 5'000; ++i) {
    const auto addr =
        net::random_address_in(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(incremental.lookup(addr), rebuilt.lookup(addr));
  }
}

TEST(UpdateStream, EmptyInitialTableStillGeneratesAnnounces) {
  const auto updates =
      net::generate_update_stream(RouteTable{}, UpdateStreamConfig{100, 13});
  EXPECT_EQ(updates.size(), 100u);
  EXPECT_EQ(updates.front().kind, UpdateKind::kAnnounce);
}

}  // namespace
