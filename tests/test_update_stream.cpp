#include "net/update_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "net/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using namespace spal;
using net::RouteTable;
using net::TableUpdate;
using net::UpdateKind;
using net::UpdateStreamConfig;

RouteTable base_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 701;
  return net::generate_table(config);
}

TEST(UpdateStream, DeterministicPerSeed) {
  const RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 500;
  config.seed = 3;
  EXPECT_EQ(net::generate_update_stream(table, config),
            net::generate_update_stream(table, config));
  config.seed = 4;
  EXPECT_NE(net::generate_update_stream(table, UpdateStreamConfig{500, 3}),
            net::generate_update_stream(table, config));
}

TEST(UpdateStream, EveryUpdateAppliesCleanly) {
  RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 2'000;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    EXPECT_TRUE(net::apply_update(table, update));
  }
}

TEST(UpdateStream, KindMixTracksConfiguredFractions) {
  const RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 5'000;
  config.announce_fraction = 0.2;
  config.withdraw_fraction = 0.3;
  std::size_t announces = 0, withdraws = 0, changes = 0;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    switch (update.kind) {
      case UpdateKind::kAnnounce: ++announces; break;
      case UpdateKind::kWithdraw: ++withdraws; break;
      case UpdateKind::kHopChange: ++changes; break;
    }
  }
  EXPECT_NEAR(static_cast<double>(announces) / 5'000.0, 0.2, 0.03);
  EXPECT_NEAR(static_cast<double>(withdraws) / 5'000.0, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(changes) / 5'000.0, 0.5, 0.03);
}

TEST(UpdateStream, TableSizeEvolvesByAnnouncesMinusWithdraws) {
  RouteTable table = base_table();
  const std::size_t initial = table.size();
  UpdateStreamConfig config;
  config.count = 1'000;
  std::int64_t delta = 0;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    if (update.kind == UpdateKind::kAnnounce) ++delta;
    if (update.kind == UpdateKind::kWithdraw) --delta;
    net::apply_update(table, update);
  }
  EXPECT_EQ(static_cast<std::int64_t>(table.size()),
            static_cast<std::int64_t>(initial) + delta);
}

TEST(UpdateStream, WithdrawalsNameLivePrefixesOnly) {
  RouteTable table = base_table();
  for (const TableUpdate& update :
       net::generate_update_stream(table, UpdateStreamConfig{3'000, 9})) {
    if (update.kind == UpdateKind::kWithdraw) {
      EXPECT_TRUE(table.find(update.prefix).has_value())
          << update.prefix.to_string();
    }
    net::apply_update(table, update);
  }
}

TEST(UpdateStream, AnnouncementsAreNewPrefixes) {
  RouteTable table = base_table();
  for (const TableUpdate& update :
       net::generate_update_stream(table, UpdateStreamConfig{3'000, 10})) {
    if (update.kind == UpdateKind::kAnnounce) {
      EXPECT_FALSE(table.find(update.prefix).has_value())
          << update.prefix.to_string();
    }
    net::apply_update(table, update);
  }
}

TEST(UpdateStream, IncrementalBinaryTrieMatchesRebuild) {
  // Strong equivalence: applying the stream incrementally to a binary trie
  // gives the same LPM behaviour as rebuilding from the updated table.
  RouteTable table = base_table();
  trie::BinaryTrie incremental(table);
  const auto updates = net::generate_update_stream(table, UpdateStreamConfig{1'000, 11});
  for (const TableUpdate& update : updates) {
    net::apply_update(table, update);
    switch (update.kind) {
      case UpdateKind::kAnnounce:
      case UpdateKind::kHopChange:
        incremental.insert(update.prefix, update.next_hop);
        break;
      case UpdateKind::kWithdraw:
        EXPECT_TRUE(incremental.remove(update.prefix));
        break;
    }
  }
  const trie::BinaryTrie rebuilt(table);
  std::mt19937_64 rng(12);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 5'000; ++i) {
    const auto addr =
        net::random_address_in(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(incremental.lookup(addr), rebuilt.lookup(addr));
  }
}

TEST(UpdateStream, EmptyInitialTableStillGeneratesAnnounces) {
  const auto updates =
      net::generate_update_stream(RouteTable{}, UpdateStreamConfig{100, 13});
  EXPECT_EQ(updates.size(), 100u);
  EXPECT_EQ(updates.front().kind, UpdateKind::kAnnounce);
}

TEST(UpdateStream, KindMixTracksCustomFractions) {
  const RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 10'000;
  config.seed = 23;
  config.announce_fraction = 0.2;
  config.withdraw_fraction = 0.5;
  std::size_t announces = 0, withdraws = 0, changes = 0;
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    switch (update.kind) {
      case UpdateKind::kAnnounce: ++announces; break;
      case UpdateKind::kWithdraw: ++withdraws; break;
      case UpdateKind::kHopChange: ++changes; break;
    }
  }
  const double n = static_cast<double>(config.count);
  EXPECT_NEAR(static_cast<double>(announces) / n, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(withdraws) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(changes) / n, 0.3, 0.02);
}

TEST(UpdateStream, AnnouncedLengthsFollowTableModel) {
  // Announcement lengths reuse the table generator's weights (floored at
  // /8), so the table keeps its BGP shape as it churns: /24 stays the
  // dominant length and nothing shorter than /8 appears.
  const RouteTable table = base_table();
  UpdateStreamConfig config;
  config.count = 10'000;
  config.seed = 29;
  config.announce_fraction = 1.0;
  config.withdraw_fraction = 0.0;
  std::array<std::size_t, net::Prefix::kMaxLength + 1> histogram{};
  for (const TableUpdate& update : net::generate_update_stream(table, config)) {
    ASSERT_EQ(update.kind, UpdateKind::kAnnounce);
    ASSERT_GE(update.prefix.length(), 8);
    ASSERT_LE(update.prefix.length(), net::Prefix::kMaxLength);
    ++histogram[static_cast<std::size_t>(update.prefix.length())];
  }
  const std::size_t modal = static_cast<std::size_t>(
      std::max_element(histogram.begin(), histogram.end()) -
      histogram.begin());
  EXPECT_EQ(modal, 24u);
  EXPECT_GT(std::count_if(histogram.begin(), histogram.end(),
                          [](std::size_t c) { return c > 0; }),
            5);
}

// --- IPv6 stream ---------------------------------------------------------

net::RouteTable6 base_table6() {
  net::TableGen6Config config;
  config.size = 3'000;
  config.seed = 709;
  return net::generate_table6(config);
}

TEST(UpdateStream6, DeterministicPerSeed) {
  const net::RouteTable6 table = base_table6();
  UpdateStreamConfig config;
  config.count = 500;
  config.seed = 3;
  EXPECT_EQ(net::generate_update_stream6(table, config),
            net::generate_update_stream6(table, config));
  config.seed = 4;
  EXPECT_NE(net::generate_update_stream6(table, UpdateStreamConfig{500, 3}),
            net::generate_update_stream6(table, config));
}

TEST(UpdateStream6, EveryUpdateAppliesCleanly) {
  net::RouteTable6 table = base_table6();
  UpdateStreamConfig config;
  config.count = 2'000;
  for (const net::TableUpdate6& update :
       net::generate_update_stream6(base_table6(), config)) {
    EXPECT_TRUE(net::apply_update(table, update));
  }
}

TEST(UpdateStream6, WithdrawalsNameLivePrefixesOnly) {
  net::RouteTable6 table = base_table6();
  UpdateStreamConfig config;
  config.count = 2'000;
  config.seed = 31;
  for (const net::TableUpdate6& update :
       net::generate_update_stream6(base_table6(), config)) {
    if (update.kind == UpdateKind::kWithdraw) {
      EXPECT_TRUE(table.find(update.prefix).has_value());
    }
    net::apply_update(table, update);
  }
}

TEST(UpdateStream6, AnnouncementsAreNewGlobalUnicastPrefixes) {
  net::RouteTable6 table = base_table6();
  UpdateStreamConfig config;
  config.count = 2'000;
  config.seed = 37;
  for (const net::TableUpdate6& update :
       net::generate_update_stream6(base_table6(), config)) {
    if (update.kind == UpdateKind::kAnnounce) {
      EXPECT_FALSE(table.find(update.prefix).has_value());
      // Inside 2000::/3, at least /16, per the v6 table generator's model.
      EXPECT_EQ(update.prefix.address().hi() >> 61, 1u);
      EXPECT_GE(update.prefix.length(), 16);
      EXPECT_LE(update.prefix.length(), net::Prefix6::kMaxLength);
    }
    net::apply_update(table, update);
  }
}

TEST(UpdateStream6, AnnouncedLengthsFollow48DominantModel) {
  UpdateStreamConfig config;
  config.count = 10'000;
  config.seed = 41;
  config.announce_fraction = 1.0;
  config.withdraw_fraction = 0.0;
  std::array<std::size_t, net::Prefix6::kMaxLength + 1> histogram{};
  for (const net::TableUpdate6& update :
       net::generate_update_stream6(base_table6(), config)) {
    ASSERT_EQ(update.kind, UpdateKind::kAnnounce);
    ++histogram[static_cast<std::size_t>(update.prefix.length())];
  }
  const std::size_t modal = static_cast<std::size_t>(
      std::max_element(histogram.begin(), histogram.end()) -
      histogram.begin());
  EXPECT_EQ(modal, 48u);
  EXPECT_GT(histogram[32], histogram[40]);  // the RIR-allocation spike
}

}  // namespace
