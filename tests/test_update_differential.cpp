// Differential update-vs-oracle harness: every trie kind must agree with an
// incrementally updated binary-trie oracle across long seeded streams of
// interleaved announces / withdraws / hop changes and lookups — the dynamic
// tries (DP) via in-place insert/remove, the immutable structures (Lulea,
// LC, Gupta, stride) via epoch rebuilds over the churned table. Both
// address families are covered, plus the two structurally nasty edge cases:
// withdrawing the default route (the root node is never spliced) and
// announcing a prefix that splits a path-compressed edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "net/table_gen.h"
#include "net/update_stream.h"
#include "trie/binary_trie.h"
#include "trie/binary_trie6.h"
#include "trie/dp_trie.h"
#include "trie/dp_trie6.h"
#include "trie/lc_trie6.h"
#include "trie/lpm.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Ipv6Addr;
using net::kNoRoute;
using net::Prefix;
using net::Prefix6;
using net::UpdateKind;

Prefix p(const char* text) { return *Prefix::parse(text); }

// Prefix6::parse only accepts the full eight-group form; numeric
// construction is clearer for the handful of fixed v6 prefixes here.
Prefix6 p6(std::uint64_t hi, std::uint64_t lo, int length) {
  return Prefix6(Ipv6Addr{hi, lo}, length);
}

net::RouteTable v4_base() {
  net::TableGenConfig config;
  config.size = 2'000;
  config.seed = 811;
  return net::generate_table(config);
}

net::RouteTable6 v6_base() {
  net::TableGen6Config config;
  config.size = 2'000;
  config.seed = 907;
  return net::generate_table6(config);
}

std::vector<net::TableUpdate> v4_stream(const net::RouteTable& initial,
                                        std::uint64_t seed) {
  net::UpdateStreamConfig config;
  config.count = 10'000;
  config.seed = seed;
  return net::generate_update_stream(initial, config);
}

std::vector<net::TableUpdate6> v6_stream(const net::RouteTable6& initial,
                                         std::uint64_t seed) {
  net::UpdateStreamConfig config;
  config.count = 10'000;
  config.seed = seed;
  return net::generate_update_stream6(initial, config);
}

/// Applies one update to any structure exposing insert(prefix, hop) /
/// remove(prefix) — LpmIndex subclasses, BinaryTrie6, DpTrie6.
template <typename Index, typename Update>
void apply_to_index(Index& index, const Update& update) {
  if (update.kind == UpdateKind::kWithdraw) {
    ASSERT_TRUE(index.remove(update.prefix));
  } else {
    index.insert(update.prefix, update.next_hop);
  }
}

// --- IPv4: incremental DP trie vs incremental binary-trie oracle ---------

TEST(UpdateDifferential, V4DpIncrementalTracksBinaryOracle) {
  const net::RouteTable base = v4_base();
  net::RouteTable working = base;
  trie::DpTrie dp(base);
  trie::BinaryTrie oracle(base);
  const auto updates = v4_stream(base, 97);
  std::mt19937_64 rng(5);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& update = updates[i];
    ASSERT_TRUE(net::apply_update(working, update));
    apply_to_index(dp, update);
    apply_to_index(oracle, update);
    // Interleaved lookups: one uniform address, one under the just-touched
    // prefix (the spot most likely to expose a bad split or splice).
    const Ipv4Addr uniform{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(dp.lookup(uniform), oracle.lookup(uniform)) << "update " << i;
    const Ipv4Addr covered = net::random_address_in(update.prefix, rng);
    ASSERT_EQ(dp.lookup(covered), oracle.lookup(covered)) << "update " << i;
    if ((i + 1) % 1'000 == 0) {
      // Batch boundary: sweep an address under every live prefix.
      for (const auto& entry : working.entries()) {
        const Ipv4Addr addr = net::random_address_in(entry.prefix, rng);
        ASSERT_EQ(dp.lookup(addr), oracle.lookup(addr))
            << "batch after update " << i;
      }
    }
  }
  // The churned trie must be indistinguishable from one rebuilt from the
  // final table, and both must agree with the linear-scan ground truth.
  const trie::DpTrie rebuilt(working);
  EXPECT_EQ(dp.node_count(), rebuilt.node_count());
  for (int i = 0; i < 2'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(dp.lookup(addr), rebuilt.lookup(addr));
    ASSERT_EQ(dp.lookup(addr), working.lookup_linear(addr));
  }
}

// --- IPv4: epoch-rebuild kinds vs incremental binary-trie oracle ---------

class EpochRebuildTest : public ::testing::TestWithParam<trie::TrieKind> {};

TEST_P(EpochRebuildTest, V4EpochRebuildTracksBinaryOracle) {
  const trie::TrieKind kind = GetParam();
  const net::RouteTable base = v4_base();
  net::RouteTable working = base;
  trie::BinaryTrie oracle(base);
  const auto updates = v4_stream(base, 131);
  std::mt19937_64 rng(6);
  const std::size_t batch = 500;
  for (std::size_t start = 0; start < updates.size(); start += batch) {
    const std::size_t end = std::min(start + batch, updates.size());
    for (std::size_t i = start; i < end; ++i) {
      ASSERT_TRUE(net::apply_update(working, updates[i]));
      apply_to_index(oracle, updates[i]);
    }
    const std::unique_ptr<trie::LpmIndex> fe = trie::build_lpm(kind, working);
    std::uniform_int_distribution<std::size_t> pick(0, working.size() - 1);
    for (int j = 0; j < 200; ++j) {
      const Ipv4Addr uniform{static_cast<std::uint32_t>(rng())};
      ASSERT_EQ(fe->lookup(uniform), oracle.lookup(uniform))
          << "epoch after update " << end;
      const Ipv4Addr covered = net::random_address_in(
          working.entries()[pick(rng)].prefix, rng);
      ASSERT_EQ(fe->lookup(covered), oracle.lookup(covered))
          << "epoch after update " << end;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, EpochRebuildTest,
    ::testing::Values(trie::TrieKind::kDp, trie::TrieKind::kLulea,
                      trie::TrieKind::kLc, trie::TrieKind::kGupta,
                      trie::TrieKind::kStride),
    [](const ::testing::TestParamInfo<trie::TrieKind>& info) {
      return std::string(trie::to_string(info.param));
    });

// --- IPv6: incremental DP trie vs incremental binary-trie oracle ---------

TEST(UpdateDifferential, V6DpIncrementalTracksBinaryOracle) {
  const net::RouteTable6 base = v6_base();
  net::RouteTable6 working = base;
  trie::DpTrie6 dp(base);
  trie::BinaryTrie6 oracle(base);
  const auto updates = v6_stream(base, 211);
  std::mt19937_64 rng(7);
  for (std::size_t i = 0; i < updates.size(); ++i) {
    const auto& update = updates[i];
    ASSERT_TRUE(net::apply_update(working, update));
    apply_to_index(dp, update);
    apply_to_index(oracle, update);
    const Ipv6Addr uniform{rng(), rng()};
    ASSERT_EQ(dp.lookup(uniform), oracle.lookup(uniform)) << "update " << i;
    const Ipv6Addr covered = net::random_address_in6(update.prefix, rng);
    ASSERT_EQ(dp.lookup(covered), oracle.lookup(covered)) << "update " << i;
    if ((i + 1) % 1'000 == 0) {
      for (const auto& entry : working.entries()) {
        const Ipv6Addr addr = net::random_address_in6(entry.prefix, rng);
        ASSERT_EQ(dp.lookup(addr), oracle.lookup(addr))
            << "batch after update " << i;
      }
    }
  }
  const trie::DpTrie6 rebuilt(working);
  EXPECT_EQ(dp.node_count(), rebuilt.node_count());
  for (int i = 0; i < 2'000; ++i) {
    const Ipv6Addr addr{rng(), rng()};
    ASSERT_EQ(dp.lookup(addr), rebuilt.lookup(addr));
  }
}

// --- IPv6: epoch rebuild (LC-trie) vs incremental oracle -----------------

TEST(UpdateDifferential, V6LcTrieEpochRebuildTracksBinaryOracle) {
  const net::RouteTable6 base = v6_base();
  net::RouteTable6 working = base;
  trie::BinaryTrie6 oracle(base);
  const auto updates = v6_stream(base, 257);
  std::mt19937_64 rng(8);
  const std::size_t batch = 500;
  for (std::size_t start = 0; start < updates.size(); start += batch) {
    const std::size_t end = std::min(start + batch, updates.size());
    for (std::size_t i = start; i < end; ++i) {
      ASSERT_TRUE(net::apply_update(working, updates[i]));
      apply_to_index(oracle, updates[i]);
    }
    const trie::LcTrie6 fe(working);
    std::uniform_int_distribution<std::size_t> pick(0, working.size() - 1);
    for (int j = 0; j < 200; ++j) {
      const Ipv6Addr uniform{rng(), rng()};
      ASSERT_EQ(fe.lookup(uniform), oracle.lookup(uniform))
          << "epoch after update " << end;
      const Ipv6Addr covered = net::random_address_in6(
          working.entries()[pick(rng)].prefix, rng);
      ASSERT_EQ(fe.lookup(covered), oracle.lookup(covered))
          << "epoch after update " << end;
    }
  }
}

// --- Edge case: withdrawing the default route ----------------------------
// The root node backs the zero-length prefix and is never spliced away;
// withdrawing it must clear the hop without disturbing longer matches.

TEST(UpdateDifferential, V4WithdrawOfDefaultRoute) {
  net::RouteTable table;
  table.add(p("0.0.0.0/0"), 7);
  table.add(p("10.0.0.0/8"), 1);
  trie::DpTrie dp(table);
  trie::BinaryTrie oracle(table);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0B000000u}), 7u);
  EXPECT_TRUE(dp.remove(p("0.0.0.0/0")));
  EXPECT_TRUE(oracle.remove(p("0.0.0.0/0")));
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0B000000u}), kNoRoute);
  EXPECT_EQ(oracle.lookup(Ipv4Addr{0x0B000000u}), kNoRoute);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0A000001u}), 1u);
  // Withdrawing it twice is a no-op, and re-announcing restores coverage.
  EXPECT_FALSE(dp.remove(p("0.0.0.0/0")));
  dp.insert(p("0.0.0.0/0"), 9);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0B000000u}), 9u);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0A000001u}), 1u);
}

TEST(UpdateDifferential, V6WithdrawOfDefaultRoute) {
  const Prefix6 def = p6(0, 0, 0);                          // ::/0
  const Prefix6 doc = p6(0x20010DB800000000ULL, 0, 32);     // 2001:db8::/32
  net::RouteTable6 table;
  table.add(def, 7);
  table.add(doc, 1);
  trie::DpTrie6 dp(table);
  trie::BinaryTrie6 oracle(table);
  const Ipv6Addr outside{0x3000000000000000ULL, 1};
  const Ipv6Addr inside{0x20010DB800000000ULL, 1};
  EXPECT_EQ(dp.lookup(outside), 7u);
  EXPECT_TRUE(dp.remove(def));
  EXPECT_TRUE(oracle.remove(def));
  EXPECT_EQ(dp.lookup(outside), kNoRoute);
  EXPECT_EQ(oracle.lookup(outside), kNoRoute);
  EXPECT_EQ(dp.lookup(inside), 1u);
  EXPECT_FALSE(dp.remove(def));
  dp.insert(def, 9);
  EXPECT_EQ(dp.lookup(outside), 9u);
  EXPECT_EQ(dp.lookup(inside), 1u);
}

// --- Edge case: an announce that splits a compressed path ----------------
// 10.0.0.0/8 -> 10.255.255.0/24 is one compressed edge skipping bits 8..23.
// Announcing a prefix that diverges inside the skipped run must introduce a
// branch node; announcing one that lies on the run must introduce a prefix
// node; withdrawing either must splice the path back together.

TEST(UpdateDifferential, V4AnnounceSplitsCompressedPath) {
  net::RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.255.255.0/24"), 2);
  trie::DpTrie dp(table);
  const std::size_t compressed_nodes = dp.node_count();

  // Diverges from 10.255.255.0/24 at bit 9 (0x40 vs 0xFF in octet two).
  dp.insert(p("10.64.0.0/16"), 3);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0A400001u}), 3u);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0AFFFF01u}), 2u);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0AC80000u}), 1u);  // 10.200.0.0 -> the /8

  // Lies on the compressed run: a proper prefix of the /24.
  dp.insert(p("10.255.0.0/16"), 4);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0AFF0101u}), 4u);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0AFFFF01u}), 2u);

  // Withdrawals splice both splits back out; the node count returns to the
  // original compressed shape (no leaked pass-through nodes).
  EXPECT_TRUE(dp.remove(p("10.255.0.0/16")));
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0AFF0101u}), 1u);
  EXPECT_TRUE(dp.remove(p("10.64.0.0/16")));
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0A400001u}), 1u);
  EXPECT_EQ(dp.node_count(), compressed_nodes);
  EXPECT_EQ(dp.lookup(Ipv4Addr{0x0AFFFF01u}), 2u);
}

TEST(UpdateDifferential, V6AnnounceSplitsCompressedPath) {
  const Prefix6 wide = p6(0x2000000000000000ULL, 0, 8);      // 2000::/8
  const Prefix6 deep_p = p6(0x20FFFFFF00000000ULL, 0, 32);   // 20ff:ffff::/32
  net::RouteTable6 table;
  table.add(wide, 1);
  table.add(deep_p, 2);
  trie::DpTrie6 dp(table);
  const std::size_t compressed_nodes = dp.node_count();

  const Ipv6Addr deep{0x20FFFFFF00000000ULL, 1};
  const Ipv6Addr divergent{0x2040000000000000ULL, 1};
  const Ipv6Addr run{0x20FF010100000000ULL, 1};

  const Prefix6 branch = p6(0x2040000000000000ULL, 0, 16);   // 2040::/16
  dp.insert(branch, 3);  // splits the edge with a branch node
  EXPECT_EQ(dp.lookup(divergent), 3u);
  EXPECT_EQ(dp.lookup(deep), 2u);

  const Prefix6 on_run = p6(0x20FF000000000000ULL, 0, 16);   // 20ff::/16
  dp.insert(on_run, 4);  // prefix node on the compressed run
  EXPECT_EQ(dp.lookup(run), 4u);
  EXPECT_EQ(dp.lookup(deep), 2u);

  EXPECT_TRUE(dp.remove(on_run));
  EXPECT_EQ(dp.lookup(run), 1u);
  EXPECT_TRUE(dp.remove(branch));
  EXPECT_EQ(dp.lookup(divergent), 1u);
  EXPECT_EQ(dp.node_count(), compressed_nodes);
  EXPECT_EQ(dp.lookup(deep), 2u);
}

// --- Churn must not leak nodes -------------------------------------------
// Insert a large batch of distinct prefixes into an empty trie, remove them
// all again: every split node must be spliced back onto the free list and
// the node count must return exactly to the empty-trie baseline.

TEST(UpdateDifferential, V4ChurnReclaimsAllNodes) {
  trie::DpTrie dp(net::RouteTable{});
  trie::BinaryTrie oracle;
  const std::size_t empty_nodes = dp.node_count();
  std::mt19937_64 rng(17);
  std::vector<Prefix> inserted;
  while (inserted.size() < 1'000) {
    const int length = 8 + static_cast<int>(rng() % 25);  // 8..32
    const Prefix prefix(Ipv4Addr{static_cast<std::uint32_t>(rng())}, length);
    bool duplicate = false;
    for (const Prefix& seen : inserted) duplicate |= (seen == prefix);
    if (duplicate) continue;
    inserted.push_back(prefix);
    dp.insert(prefix, static_cast<net::NextHop>(inserted.size()));
    oracle.insert(prefix, static_cast<net::NextHop>(inserted.size()));
  }
  for (int i = 0; i < 2'000; ++i) {
    const Ipv4Addr addr{static_cast<std::uint32_t>(rng())};
    ASSERT_EQ(dp.lookup(addr), oracle.lookup(addr));
  }
  std::shuffle(inserted.begin(), inserted.end(), rng);
  for (const Prefix& prefix : inserted) {
    ASSERT_TRUE(dp.remove(prefix));
  }
  EXPECT_EQ(dp.node_count(), empty_nodes);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(dp.lookup(Ipv4Addr{static_cast<std::uint32_t>(rng())}), kNoRoute);
  }
}

TEST(UpdateDifferential, V6ChurnReclaimsAllNodes) {
  trie::DpTrie6 dp(net::RouteTable6{});
  trie::BinaryTrie6 oracle;
  const std::size_t empty_nodes = dp.node_count();
  std::mt19937_64 rng(19);
  std::vector<Prefix6> inserted;
  while (inserted.size() < 1'000) {
    const int length = 16 + static_cast<int>(rng() % 49);  // 16..64
    const Prefix6 prefix(Ipv6Addr{rng(), rng()}, length);
    bool duplicate = false;
    for (const Prefix6& seen : inserted) duplicate |= (seen == prefix);
    if (duplicate) continue;
    inserted.push_back(prefix);
    dp.insert(prefix, static_cast<net::NextHop>(inserted.size()));
    oracle.insert(prefix, static_cast<net::NextHop>(inserted.size()));
  }
  for (int i = 0; i < 2'000; ++i) {
    const Ipv6Addr addr{rng(), rng()};
    ASSERT_EQ(dp.lookup(addr), oracle.lookup(addr));
  }
  std::shuffle(inserted.begin(), inserted.end(), rng);
  for (const Prefix6& prefix : inserted) {
    ASSERT_TRUE(dp.remove(prefix));
  }
  EXPECT_EQ(dp.node_count(), empty_nodes);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(dp.lookup(Ipv6Addr{rng(), rng()}), kNoRoute);
  }
}

}  // namespace
