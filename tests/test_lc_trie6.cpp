#include "trie/lc_trie6.h"

#include <gtest/gtest.h>

#include <random>

#include "trie/binary_trie6.h"
#include "trie/dp_trie6.h"

namespace {

using namespace spal;
using net::Ipv6Addr;
using net::Prefix6;
using net::RouteTable6;
using trie::LcTrie6;

Prefix6 p6(std::uint64_t hi, std::uint64_t lo, int len) {
  return Prefix6(Ipv6Addr{hi, lo}, len);
}

TEST(Ipv6AddrBits, ExtractsWithinAndAcrossHalves) {
  const Ipv6Addr addr{0x0123456789ABCDEFULL, 0xFEDCBA9876543210ULL};
  EXPECT_EQ(addr.bits(0, 8), 0x01u);
  EXPECT_EQ(addr.bits(8, 16), 0x2345u);
  EXPECT_EQ(addr.bits(56, 8), 0xEFu);       // tail of hi
  EXPECT_EQ(addr.bits(64, 8), 0xFEu);       // head of lo
  EXPECT_EQ(addr.bits(60, 8), 0xFFu);       // straddle: F | FE's top nibble
  EXPECT_EQ(addr.bits(48, 32), 0xCDEFFEDCu);  // 16 from hi + 16 from lo
  EXPECT_EQ(addr.bits(120, 8), 0x10u);
  EXPECT_EQ(addr.bits(5, 0), 0u);
}

TEST(Prefix6Helpers, EqualPrefixBitsAndCommonPrefix) {
  const Ipv6Addr a{0x2001000000000000ULL, 0xFF00000000000000ULL};
  const Ipv6Addr b{0x2001000000000000ULL, 0x0F00000000000000ULL};
  EXPECT_TRUE(net::equal_prefix_bits(a, b, 64));
  EXPECT_FALSE(net::equal_prefix_bits(a, b, 65));
  EXPECT_EQ(net::common_prefix_bits(a, b), 64);
  EXPECT_EQ(net::common_prefix_bits(a, a), 128);
  EXPECT_EQ(net::common_prefix_bits(Ipv6Addr{0, 0}, Ipv6Addr{1ULL << 63, 0}), 0);
}

TEST(LcTrie6, ChainServesCoveredAddresses) {
  RouteTable6 table;
  table.add(p6(0x2001000000000000ULL, 0, 16), 1);
  table.add(p6(0x20010DB800000000ULL, 0, 32), 2);
  table.add(p6(0x20010DB8AAAA0000ULL, 0, 48), 3);
  const LcTrie6 trie(table);
  EXPECT_EQ(trie.internal_count(), 2u);
  EXPECT_EQ(trie.base_count(), 1u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB8AAAA0001ULL, 0}), 3u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB8BBBB0000ULL, 0}), 2u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x2001FFFF00000000ULL, 0}), 1u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x3000000000000000ULL, 0}), net::kNoRoute);
}

TEST(LcTrie6, SingleEntryAndEmpty) {
  EXPECT_EQ(LcTrie6{RouteTable6{}}.lookup(Ipv6Addr{1, 1}), net::kNoRoute);
  RouteTable6 table;
  table.add(p6(0x20010DB800000000ULL, 0, 32), 5);
  const LcTrie6 trie(table);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB800000000ULL, 99}), 5u);
  EXPECT_EQ(trie.lookup(Ipv6Addr{0x20010DB900000000ULL, 0}), net::kNoRoute);
}

class LcTrie6FillTest : public ::testing::TestWithParam<double> {};

TEST_P(LcTrie6FillTest, OracleAgreement) {
  net::TableGen6Config config;
  config.size = 8'000;
  config.seed = 811;
  const RouteTable6 table = net::generate_table6(config);
  const trie::BinaryTrie6 oracle(table);
  const LcTrie6 trie(table, GetParam());
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 15'000; ++i) {
    const Ipv6Addr addr =
        (i % 2 == 0)
            ? Ipv6Addr{rng() | 0x2000000000000000ULL, rng()}
            : net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(trie.lookup(addr), oracle.lookup(addr))
        << "fill=" << GetParam() << " " << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(FillFactors, LcTrie6FillTest,
                         ::testing::Values(0.125, 0.25, 0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "fill_" +
                                  std::to_string(static_cast<int>(info.param * 1000));
                         });

TEST(LcTrie6, FewerAccessesThanDpAndFarFewerThanBinary) {
  net::TableGen6Config config;
  config.size = 8'000;
  config.seed = 812;
  const RouteTable6 table = net::generate_table6(config);
  const trie::BinaryTrie6 binary(table);
  const trie::DpTrie6 dp(table);
  const LcTrie6 lc(table);
  std::mt19937_64 rng(10);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  trie::MemAccessCounter binary_counter, dp_counter, lc_counter;
  for (int i = 0; i < 3'000; ++i) {
    const auto addr =
        net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    const auto expected = binary.lookup_counted(addr, binary_counter);
    ASSERT_EQ(dp.lookup_counted(addr, dp_counter), expected);
    ASSERT_EQ(lc.lookup_counted(addr, lc_counter), expected);
  }
  EXPECT_LT(lc_counter.total(), dp_counter.total());
  EXPECT_LT(dp_counter.total(), binary_counter.total());
}

TEST(LcTrie6, BiggerStorageThanIpv4AtSamePrefixCount) {
  // The Sec. 2.1 remark: the same software structure over 128-bit strings
  // costs more storage. Compare per-entry footprints.
  net::TableGen6Config config6;
  config6.size = 8'000;
  config6.seed = 813;
  const LcTrie6 v6(net::generate_table6(config6));
  EXPECT_EQ(v6.storage_bytes(),
            v6.node_count() * 4 + v6.base_count() * 24 + v6.internal_count() * 8);
  EXPECT_GT(v6.storage_bytes(), 8'000u * 10);  // > 10 B per prefix at 128 bits
}

}  // namespace
