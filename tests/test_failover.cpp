// Failover tests: fragment replication, per-LC health tracking, rejoin
// resync, and lossless live fragment migration (DESIGN.md, "Failure
// model"). The load-bearing properties: packet conservation and oracle
// agreement survive a mid-run primary-LC outage and an operator migration;
// R = 0 keeps every run byte-identical to the pre-failover machinery; and
// the failover ledger balances the same conservation rules spal_report
// --check enforces.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/health_tracker.h"
#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/table_gen.h"
#include "partition/rot_partition.h"

namespace {

using namespace spal;
using core::HealthTracker;
using core::PeerState;
using core::RouterConfig;
using core::RouterResult;
using core::RouterSim;
using core::RouterSim6;

net::RouteTable small_table() {
  net::TableGenConfig config;
  config.size = 3'000;
  config.seed = 907;
  return net::generate_table(config);
}

trace::WorkloadProfile small_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

/// 10 Gbps keeps the fabric uncongested so health evidence comes from the
/// injected outage, not queueing timeouts. The trace spans roughly
/// 40 cycles/packet × packets_per_lc ≈ 80k cycles.
RouterConfig failover_config(int num_lcs) {
  RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 2'000;
  config.cache.blocks = 512;
  config.line_rate_gbps = 10.0;
  config.fault.enabled = true;
  config.recovery.max_retries = 3;
  return config;
}

constexpr std::uint64_t kOutageStart = 20'000;
constexpr std::uint64_t kOutageEnd = 50'000;

void add_outage(RouterConfig& config, int port) {
  config.fault.outages.push_back(
      fabric::OutageWindow{port, kOutageStart, kOutageEnd});
}

/// The conservation rules every failover run must satisfy (the in-process
/// mirror of spal_report --check's failover block).
void expect_failover_ledger(const RouterResult& result,
                            std::uint64_t injected) {
  EXPECT_EQ(result.resolved_packets, injected);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.latency.count(), injected);
  const auto& fo = result.failover;
  EXPECT_TRUE(fo.enabled);
  EXPECT_LE(fo.local_replica_serves, fo.replica_lookups);
  EXPECT_LE(fo.probe_replies, fo.probe_replies_sent);
  EXPECT_LE(fo.probe_replies_sent, fo.probes_sent);
  EXPECT_LE(fo.rejoins, fo.probe_replies);
  EXPECT_LE(fo.rejoins, fo.recoveries);
  EXPECT_LE(fo.down_transitions, fo.suspect_transitions);
  EXPECT_LE(fo.rerouted_requests, result.remote_requests);
  EXPECT_LE(fo.resync_entries, fo.missed_updates);
  EXPECT_LE(fo.resync_fetches, fo.resync_chunks);
  EXPECT_LE(fo.acting_primary_applications, fo.replica_update_applications);
  EXPECT_EQ(fo.cutovers, fo.migrations + fo.resync_cutovers);
  EXPECT_EQ(fo.control_messages,
            fo.probes_sent + fo.probe_replies_sent + fo.resync_fetches +
                fo.resync_chunks + fo.migration_chunks +
                fo.double_delivered_updates + fo.cutover_messages);
  EXPECT_EQ(result.update.update_messages,
            result.update.applications - fo.resync_entries);
}

// ----- Replica placement (partition layer) ---------------------------------

TEST(ReplicaPlan, RingPlacementShape) {
  const auto plan = partition::assign_replicas(/*num_lcs=*/5, /*replicas=*/2);
  ASSERT_EQ(plan.size(), 5u);
  for (int frag = 0; frag < 5; ++frag) {
    const auto& holders = plan[static_cast<std::size_t>(frag)];
    ASSERT_EQ(holders.size(), 2u);
    EXPECT_EQ(holders[0], (frag + 1) % 5);
    EXPECT_EQ(holders[1], (frag + 2) % 5);
  }
}

TEST(ReplicaPlan, ClampsAndDegenerateCases) {
  // R is clamped to psi - 1: more copies than other LCs is meaningless.
  const auto clamped = partition::assign_replicas(3, 7);
  ASSERT_EQ(clamped.size(), 3u);
  for (const auto& holders : clamped) EXPECT_EQ(holders.size(), 2u);
  // R = 0, a single LC, and nonsense inputs all yield empty plans.
  for (const auto& holders : partition::assign_replicas(4, 0)) {
    EXPECT_TRUE(holders.empty());
  }
  for (const auto& holders : partition::assign_replicas(1, 3)) {
    EXPECT_TRUE(holders.empty());
  }
  EXPECT_TRUE(partition::assign_replicas(0, 3).empty());
  EXPECT_TRUE(partition::assign_replicas(-2, 3).empty());
}

TEST(ReplicaPlan, EveryLcHostsExactlyRForeignCopies) {
  const int psi = 8, replicas = 3;
  const auto plan = partition::assign_replicas(psi, replicas);
  std::vector<int> hosted(static_cast<std::size_t>(psi), 0);
  for (int frag = 0; frag < psi; ++frag) {
    for (const int lc : plan[static_cast<std::size_t>(frag)]) {
      EXPECT_NE(lc, frag);  // primaries are excluded from their own plan
      ++hosted[static_cast<std::size_t>(lc)];
    }
  }
  for (const int count : hosted) EXPECT_EQ(count, replicas);
}

TEST(ReplicaPlan, FragmentSizingPricesReplicaResidency) {
  const net::RouteTable table = small_table();
  const partition::RotPartition partition(table, 4, {});
  const auto plain = partition::fragment_sizing(partition, table.size());
  const auto priced =
      partition::fragment_sizing(partition, table.size(), /*replicas=*/2);
  EXPECT_EQ(plain.replicas, 0);
  EXPECT_EQ(plain.replica_prefixes, 0u);
  EXPECT_EQ(priced.replicas, 2);
  // Each fragment is copied twice, so the copy footprint is exactly twice
  // the primary footprint and the worst per-LC residency grows.
  EXPECT_EQ(priced.replica_prefixes, 2 * priced.total_prefixes);
  EXPECT_GT(priced.max_prefixes_with_replicas, priced.max_prefixes);
  // The primary sizing fields must not shift when pricing copies.
  EXPECT_EQ(priced.total_prefixes, plain.total_prefixes);
  EXPECT_EQ(priced.max_prefixes, plain.max_prefixes);
}

// ----- Health state machine ------------------------------------------------

TEST(HealthTrackerTest, TimeoutStreaksDriveSuspectThenDown) {
  HealthTracker health(/*num_lcs=*/3, /*suspect_after=*/2, /*down_after=*/4);
  EXPECT_TRUE(health.alive(0, 1));
  EXPECT_EQ(health.note_timeout(0, 1), HealthTracker::Transition::kNone);
  EXPECT_EQ(health.note_timeout(0, 1), HealthTracker::Transition::kSuspect);
  EXPECT_EQ(health.state(0, 1), PeerState::kSuspect);
  EXPECT_EQ(health.note_timeout(0, 1), HealthTracker::Transition::kNone);
  EXPECT_EQ(health.note_timeout(0, 1), HealthTracker::Transition::kDown);
  EXPECT_EQ(health.state(0, 1), PeerState::kDown);
  // Views are per-observer: LC 2 never saw any evidence against LC 1.
  EXPECT_TRUE(health.alive(2, 1));
}

TEST(HealthTrackerTest, AnyEvidenceOfLifeRevives) {
  HealthTracker health(2, 1, 2);
  EXPECT_FALSE(health.note_alive(0, 1));  // already alive: not a recovery
  health.note_timeout(0, 1);
  health.note_timeout(0, 1);
  EXPECT_EQ(health.state(0, 1), PeerState::kDown);
  EXPECT_TRUE(health.note_alive(0, 1));
  EXPECT_TRUE(health.alive(0, 1));
  // The streak reset means the suspect threshold must be re-earned.
  EXPECT_EQ(health.note_timeout(0, 1), HealthTracker::Transition::kSuspect);
}

TEST(HealthTrackerTest, ProbePacingPerPair) {
  HealthTracker health(2, 1, 2);
  EXPECT_TRUE(health.probe_due(0, 1, 100));
  health.probe_sent(0, 1, 100, 50);
  EXPECT_FALSE(health.probe_due(0, 1, 149));
  EXPECT_TRUE(health.probe_due(0, 1, 150));
  EXPECT_TRUE(health.probe_due(1, 0, 0));  // independent pair
}

// ----- R = 0 byte-identity -------------------------------------------------

TEST(Failover, ZeroReplicasIsByteIdenticalToPlainFaultRun) {
  // With R = 0 the replication knobs are dormant: arming them must not
  // perturb a fault run in any way (no probes, no steering, no RNG skew).
  RouterConfig plain = failover_config(4);
  plain.fault.drop_probability = 0.02;
  add_outage(plain, 1);
  RouterConfig armed = plain;
  armed.replication.replicas = 0;
  armed.replication.suspect_after = 1;
  armed.replication.down_after = 2;
  armed.replication.probe_interval_cycles = 64;

  RouterSim a(small_table(), plain);
  RouterSim b(small_table(), armed);
  const std::string ja = a.run_workload(small_profile(), true).to_json();
  const std::string jb = b.run_workload(small_profile(), true).to_json();
  EXPECT_EQ(ja, jb);
}

TEST(Failover, ReplicatedRunsAreShardedByteIdentical) {
  // R > 0 with faults: the health rows are observer-owned, so the sharded
  // engine must reproduce the sequential oracle exactly.
  RouterConfig config = failover_config(4);
  config.fault.drop_probability = 0.02;
  add_outage(config, 1);
  config.replication.replicas = 1;
  RouterSim oracle(small_table(), config);
  const std::string expected =
      oracle.run_workload(small_profile(), true).to_json();
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RouterConfig sharded = config;
    sharded.execution = RouterConfig::ExecutionMode::kSharded;
    sharded.threads = threads;
    RouterSim router(small_table(), sharded);
    EXPECT_EQ(router.run_workload(small_profile(), true).to_json(), expected);
  }
}

// ----- Outage failover -----------------------------------------------------

TEST(Failover, OutageReroutesToReplicaAndBoundsLatency) {
  RouterConfig config = failover_config(4);
  config.track_outage_latency = true;
  config.replication.replicas = 1;
  RouterSim baseline(small_table(), config);
  const RouterResult no_fault =
      baseline.run_workload(small_profile(), /*verify=*/true);
  expect_failover_ledger(no_fault, 4 * config.packets_per_lc);
  EXPECT_FALSE(no_fault.outage_latency_tracked);

  add_outage(config, 1);
  RouterConfig unreplicated = config;
  unreplicated.replication.replicas = 0;
  RouterSim without(small_table(), unreplicated);
  const RouterResult r0 =
      without.run_workload(small_profile(), /*verify=*/true);
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_failover_ledger(result, 4 * config.packets_per_lc);
  // The outage produced health evidence and the evidence produced steering.
  EXPECT_GT(result.failover.suspect_transitions, 0u);
  EXPECT_GT(result.failover.probes_sent, 0u);
  EXPECT_GT(result.failover.rerouted_requests, 0u);
  EXPECT_GT(result.failover.replica_lookups, 0u);
  // The LC recovers once the window closes (probe replies revive it).
  EXPECT_GT(result.failover.rejoins, 0u);
  // The robustness claim at test scale: the replica absorbs the dead
  // primary's share, so packets arriving at surviving LCs mid-outage
  // resolve far faster than the retry/degraded path R = 0 funnels them
  // into (measured ~35x here; assert a conservative 2x). Both runs track
  // the same arrival population, so the means are comparable.
  ASSERT_TRUE(result.outage_latency_tracked);
  ASSERT_GT(result.outage_latency.count(), 0u);
  EXPECT_EQ(result.outage_latency.count(), r0.outage_latency.count());
  EXPECT_LE(result.outage_latency.count(), result.latency.count());
  EXPECT_LE(result.outage_latency.mean_cycles(),
            0.5 * r0.outage_latency.mean_cycles());
  EXPECT_LT(result.fault.degraded_lookups, r0.fault.degraded_lookups);
}

TEST(Failover, ChurnDuringOutageResyncsWithoutStaleResolutions) {
  // Updates land while the primary is down: acting holders apply them, the
  // primary's applications are deferred, and the rejoin streams them back
  // before the LC answers probes again. Verify mode holds the bar: no
  // resolution may disagree with the churning full-table oracle.
  RouterConfig config = failover_config(4);
  config.replication.replicas = 1;
  add_outage(config, 1);
  config.update.interval_cycles = 1'000;
  config.update.count = 60;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_failover_ledger(result, 4 * config.packets_per_lc);
  const auto& fo = result.failover;
  // ~30 update ticks fall inside the outage; LC 1's share is deferred.
  EXPECT_GT(fo.missed_updates, 0u);
  EXPECT_GT(fo.replica_update_applications, 0u);
  // The rejoin drained the deferral queue through the resync stream.
  EXPECT_EQ(fo.resync_entries, fo.missed_updates);
  EXPECT_GT(fo.resync_cutovers, 0u);
  EXPECT_EQ(fo.cutovers, fo.resync_cutovers);
}

// ----- Live migration ------------------------------------------------------

TEST(Migration, CopyThenCutoverIsLossless) {
  // Operator migration of fragment 1 to LC 3 mid-trace, faults off: pure
  // copy-then-cutover. Every packet resolves correctly, before and after
  // the cutover, and the ledger records exactly one migration.
  RouterConfig config = failover_config(4);
  config.fault.enabled = false;
  config.migration.enabled = true;
  config.migration.from = 1;
  config.migration.to = 3;
  config.migration.start_cycle = kOutageStart;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets, 4 * config.packets_per_lc);
  EXPECT_EQ(result.verify_mismatches, 0u);
  const auto& fo = result.failover;
  EXPECT_TRUE(fo.enabled);
  EXPECT_EQ(fo.migrations, 1u);
  EXPECT_EQ(fo.cutovers, 1u);
  EXPECT_GT(fo.migration_chunks, 0u);
  EXPECT_GT(fo.snapshot_prefixes, 0u);
  // ready + broadcast to the other psi - 1 LCs
  EXPECT_EQ(fo.cutover_messages, 1u + 3u);
}

TEST(Migration, ChurnDuringCopyIsDoubleDeliveredNotLost) {
  // Updates to the migrating fragment during the transfer must reach both
  // the live source and the staged structure; the cutover then serves a
  // structure that saw every update, so verify mode stays clean.
  RouterConfig config = failover_config(4);
  config.fault.enabled = false;
  config.migration.enabled = true;
  config.migration.from = 1;
  config.migration.to = 3;
  config.migration.start_cycle = kOutageStart;
  // Slow the copy down so churn lands mid-transfer.
  config.migration.chunk_prefixes = 64;
  config.migration.chunk_interval_cycles = 256;
  config.update.interval_cycles = 1'000;
  config.update.count = 60;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets, 4 * config.packets_per_lc);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.failover.migrations, 1u);
  EXPECT_GT(result.failover.double_delivered_updates, 0u);
  EXPECT_EQ(result.update.update_messages, result.update.applications);
}

TEST(Migration, FullStackOutageChurnAndMigrationConserve) {
  // Everything at once: replica steering around a mid-run outage, deferred
  // updates resyncing at the rejoin, and an operator migration cutting over
  // under live churn. Conservation and the ledger must still balance.
  RouterConfig config = failover_config(4);
  config.replication.replicas = 1;
  add_outage(config, 1);
  config.migration.enabled = true;
  config.migration.from = 1;
  config.migration.to = 3;
  config.migration.start_cycle = kOutageStart;
  config.update.interval_cycles = 1'000;
  config.update.count = 60;
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  expect_failover_ledger(result, 4 * config.packets_per_lc);
  EXPECT_EQ(result.failover.migrations, 1u);
  EXPECT_GT(result.failover.rerouted_requests, 0u);
}

// ----- Rebalancer × health: never migrate toward a dead LC -----------------

/// Rebalancer sampling every 10k cycles with the skew threshold floored,
/// on the standard failover fabric (faults armed, uncongested).
RouterConfig rebalancer_failover_config(int num_lcs) {
  RouterConfig config = failover_config(num_lcs);
  config.rebalancer.enabled = true;
  config.rebalancer.window_cycles = 10'000;
  config.rebalancer.skew_threshold = 1.0;
  config.rebalancer.max_migrations = 4;
  return config;
}

TEST(Failover, RebalancerNeverMigratesToDownLc) {
  // Every candidate target port is in outage at every sampling instant, so
  // each skew detection must be ledgered as skipped_no_target — the
  // rebalancer must never hand a fragment to an LC it can see is down.
  RouterConfig config = rebalancer_failover_config(4);
  for (std::uint64_t tick = 10'000; tick <= 200'000; tick += 10'000) {
    for (int port = 0; port < 4; ++port) {
      config.fault.outages.push_back(
          fabric::OutageWindow{port, tick - 2, tick + 3});
    }
  }
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets, 4 * config.packets_per_lc);
  EXPECT_EQ(result.verify_mismatches, 0u);
  const auto& rb = result.rebalancer;
  EXPECT_GT(rb.skew_detections, 0u);
  EXPECT_EQ(rb.migrations_triggered, 0u);
  EXPECT_EQ(rb.skipped_no_target, rb.skew_detections);
  EXPECT_EQ(result.failover.migrations, 0u);
}

TEST(Failover, RebalancerAbortsWhenTargetDiesMidCopy) {
  // The target is healthy when chosen (tick at 10'000) but every port goes
  // dark just before the first copy chunk would be sent: the in-flight
  // migration must roll back cleanly — ledgered as aborted, with the
  // source still serving the fragment and every resolution oracle-exact.
  RouterConfig config = rebalancer_failover_config(4);
  for (int port = 0; port < 4; ++port) {
    config.fault.outages.push_back(
        fabric::OutageWindow{port, 10'002, 13'000});
  }
  RouterSim router(small_table(), config);
  const RouterResult result =
      router.run_workload(small_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets, 4 * config.packets_per_lc);
  EXPECT_EQ(result.verify_mismatches, 0u);
  const auto& rb = result.rebalancer;
  EXPECT_GE(rb.migrations_triggered, 1u);
  EXPECT_GE(rb.aborted_migrations, 1u);
  EXPECT_LE(rb.completed_migrations + rb.aborted_migrations,
            rb.migrations_triggered);
  EXPECT_EQ(rb.skew_detections,
            rb.migrations_triggered + rb.skipped_in_flight +
                rb.skipped_no_target + rb.skipped_budget);
  // Only completed migrations reach the failover cutover ledger.
  EXPECT_EQ(result.failover.migrations, rb.completed_migrations);
}

TEST(Migration, Ipv6FamilySupportsTheFullStackToo) {
  // The failover machinery lives in the family-generic core; exercise the
  // 128-bit instantiation end to end.
  net::TableGen6Config table_config;
  table_config.size = 2'000;
  table_config.seed = 911;
  RouterConfig config = failover_config(4);
  config.replication.replicas = 1;
  add_outage(config, 1);
  config.migration.enabled = true;
  config.migration.from = 1;
  config.migration.to = 3;
  config.migration.start_cycle = kOutageStart;
  RouterSim6 router(net::generate_table6(table_config), config);
  trace::WorkloadProfile profile = small_profile();
  const RouterResult result = router.run_workload(profile, /*verify=*/true);
  expect_failover_ledger(result, 4 * config.packets_per_lc);
  EXPECT_EQ(result.failover.migrations, 1u);
}

}  // namespace
