// parallel_sweep contract tests: results are in point order and identical
// across thread counts, exceptions propagate deterministically, and the
// SPAL_SWEEP_THREADS override is honoured.
#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace spal;

std::vector<int> make_points(int n) {
  std::vector<int> points(static_cast<std::size_t>(n));
  std::iota(points.begin(), points.end(), 0);
  return points;
}

/// A per-point result that is cheap but order-sensitive.
std::uint64_t slow_mix(int point) {
  std::uint64_t h = static_cast<std::uint64_t>(point) + 1;
  for (int i = 0; i < 20'000; ++i) h = h * 0x9e3779b97f4a7c15ULL + 1;
  return h;
}

TEST(ParallelSweepTest, DeterministicAcrossThreadCounts) {
  const auto points = make_points(64);
  const auto reference =
      sim::parallel_sweep(points, slow_mix, /*threads=*/1);
  ASSERT_EQ(reference.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(reference[i], slow_mix(points[i])) << "result order broken at " << i;
  }
  const int hw = sim::sweep_thread_count();
  for (const int threads : {2, 8, hw}) {
    const auto result = sim::parallel_sweep(points, slow_mix, threads);
    EXPECT_EQ(result, reference) << "threads=" << threads;
  }
}

TEST(ParallelSweepTest, RunsPointsConcurrently) {
  // With 4 workers and 4 points that each wait for the others, the sweep
  // only finishes if the points genuinely overlap in time.
  std::atomic<int> arrived{0};
  const auto points = make_points(4);
  const auto result = sim::parallel_sweep(
      points,
      [&](int point) {
        ++arrived;
        while (arrived.load() < 4) std::this_thread::yield();
        return point;
      },
      /*threads=*/4);
  EXPECT_EQ(result, points);
}

TEST(ParallelSweepTest, ExceptionFromLowestFailingPointWins) {
  const auto points = make_points(32);
  const auto fn = [](int point) -> int {
    if (point == 7 || point == 19) {
      throw std::runtime_error("boom " + std::to_string(point));
    }
    return point;
  };
  for (const int threads : {1, 2, sim::sweep_thread_count()}) {
    try {
      sim::parallel_sweep(points, fn, threads);
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 7") << "threads=" << threads;
    }
  }
}

TEST(ParallelSweepTest, EmptyAndSinglePoint) {
  const std::vector<int> empty;
  EXPECT_TRUE(sim::parallel_sweep(empty, slow_mix).empty());
  const std::vector<int> one{42};
  const auto result = sim::parallel_sweep(one, slow_mix);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], slow_mix(42));
}

TEST(ParallelSweepTest, MoveOnlyResults) {
  const auto points = make_points(8);
  const auto result = sim::parallel_sweep(points, [](int point) {
    return std::make_unique<int>(point * 3);
  });
  ASSERT_EQ(result.size(), points.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(*result[i], static_cast<int>(i) * 3);
  }
}

/// Saves and restores SPAL_SWEEP_THREADS so env tests can't leak into each
/// other (or into a later parallel_sweep default) on failure.
class SweepThreadsEnvGuard {
 public:
  SweepThreadsEnvGuard() {
    if (const char* value = std::getenv("SPAL_SWEEP_THREADS")) saved_ = value;
  }
  ~SweepThreadsEnvGuard() {
    if (saved_) {
      setenv("SPAL_SWEEP_THREADS", saved_->c_str(), 1);
    } else {
      unsetenv("SPAL_SWEEP_THREADS");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(SweepThreadCountTest, EnvOverrideWins) {
  SweepThreadsEnvGuard guard;
  ASSERT_EQ(setenv("SPAL_SWEEP_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(sim::sweep_thread_count(), 3);
  ASSERT_EQ(unsetenv("SPAL_SWEEP_THREADS"), 0);
  EXPECT_GE(sim::sweep_thread_count(), 1);
}

TEST(SweepThreadCountTest, MalformedOverridesFallBackToHardware) {
  SweepThreadsEnvGuard guard;
  ASSERT_EQ(unsetenv("SPAL_SWEEP_THREADS"), 0);
  const int fallback = sim::sweep_thread_count();
  // Rejected values must not silently become strtol's partial/saturated
  // reads ("8abc" is NOT 8 threads; an overflow is NOT LONG_MAX threads).
  for (const char* bad : {"not-a-number", "8abc", "", " 3 ", "0", "-4",
                          "99999999999999999999999"}) {
    ASSERT_EQ(setenv("SPAL_SWEEP_THREADS", bad, 1), 0);
    EXPECT_EQ(sim::sweep_thread_count(), fallback) << "value=\"" << bad << '"';
  }
}

TEST(SweepThreadCountTest, HugeButValidOverrideIsCapped) {
  SweepThreadsEnvGuard guard;
  ASSERT_EQ(setenv("SPAL_SWEEP_THREADS", "100000", 1), 0);
  EXPECT_EQ(sim::sweep_thread_count(), 4096);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllTasksFinish) {
  sim::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { ++done; });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 50);
  // The pool is reusable after wait().
  pool.submit([&done] { ++done; });
  pool.wait();
  EXPECT_EQ(done.load(), 51);
}

}  // namespace
