// Configuration-space fuzzing: random-but-deterministic router
// configurations (ψ, β, γ, associativity, line rate, FE time, trie,
// feature flags, update policy) run under full oracle verification. Any
// interaction bug between the cache quotas, W-bit waiting lists, fabric
// timing, update handling and partitioning shows up here as a mismatch or
// an unresolved packet.
#include <gtest/gtest.h>

#include <random>

#include "core/router_sim.h"
#include "core/router_sim6.h"
#include "net/table_gen.h"

namespace {

using namespace spal;

core::RouterConfig random_config(std::mt19937_64& rng) {
  core::RouterConfig config;
  const int psi_choices[] = {1, 2, 3, 4, 5, 6, 7, 8, 12, 16};
  config.num_lcs = psi_choices[rng() % std::size(psi_choices)];
  const std::size_t beta_choices[] = {64, 128, 256, 1024, 4096};
  config.cache.blocks = beta_choices[rng() % std::size(beta_choices)];
  const std::size_t assoc_choices[] = {1, 2, 4, 8};
  config.cache.associativity = assoc_choices[rng() % std::size(assoc_choices)];
  // Keep the set count a power of two.
  while (config.cache.blocks % config.cache.associativity != 0) {
    config.cache.blocks *= 2;
  }
  const double gamma_choices[] = {0.0, 0.25, 0.5, 0.75, 1.0};
  config.cache.remote_fraction = gamma_choices[rng() % std::size(gamma_choices)];
  config.cache.victim_blocks = (rng() % 2) * 8;
  const cache::Replacement policies[] = {cache::Replacement::kLru,
                                         cache::Replacement::kFifo,
                                         cache::Replacement::kRandom};
  config.cache.replacement = policies[rng() % 3];
  config.line_rate_gbps = (rng() % 2) ? 40.0 : 10.0;
  config.fe_service_cycles = 20 + static_cast<int>(rng() % 60);
  config.fe_parallelism = 1 + static_cast<int>(rng() % 3);
  const trie::TrieKind kinds[] = {trie::TrieKind::kBinary, trie::TrieKind::kDp,
                                  trie::TrieKind::kLulea, trie::TrieKind::kLc,
                                  trie::TrieKind::kStride};
  config.trie = kinds[rng() % std::size(kinds)];
  config.partition = (rng() % 4) != 0;
  config.use_lr_cache = (rng() % 4) != 0;
  config.early_reservation = (rng() % 4) != 0;
  if (rng() % 3 == 0) {
    config.flush_interval_cycles = 500 + rng() % 5'000;
    config.update_policy =
        (rng() % 2) ? core::RouterConfig::UpdatePolicy::kSelectiveInvalidate
                    : core::RouterConfig::UpdatePolicy::kFlushAll;
  }
  config.packets_per_lc = 1'500;
  config.seed = rng();
  return config;
}

trace::WorkloadProfile random_profile(std::mt19937_64& rng) {
  trace::WorkloadProfile profile;
  profile.name = "fuzz";
  profile.flows = 200 + rng() % 20'000;
  profile.zipf_alpha = 0.8 + 0.001 * static_cast<double>(rng() % 600);
  profile.burst_mean = 1.0 + 0.01 * static_cast<double>(rng() % 900);
  profile.seed = rng();
  return profile;
}

class FuzzV4Test : public ::testing::TestWithParam<int> {};

TEST_P(FuzzV4Test, RandomConfigResolvesEverythingCorrectly) {
  std::mt19937_64 rng(0xf022'0000u + static_cast<unsigned>(GetParam()));
  net::TableGenConfig table_config;
  table_config.size = 500 + rng() % 4'000;
  table_config.seed = rng();
  table_config.nested_fraction = 0.1 * static_cast<double>(rng() % 9);
  const net::RouteTable table = net::generate_table(table_config);
  const core::RouterConfig config = random_config(rng);
  core::RouterSim router(table, config);
  const auto result = router.run_workload(random_profile(rng), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets,
            static_cast<std::uint64_t>(config.num_lcs) * config.packets_per_lc)
      << "psi=" << config.num_lcs << " beta=" << config.cache.blocks
      << " gamma=" << config.cache.remote_fraction
      << " trie=" << trie::to_string(config.trie);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.latency.count(), result.resolved_packets);
}

INSTANTIATE_TEST_SUITE_P(TwentyConfigs, FuzzV4Test, ::testing::Range(0, 20));

class FuzzV6Test : public ::testing::TestWithParam<int> {};

TEST_P(FuzzV6Test, RandomConfigResolvesEverythingCorrectly) {
  std::mt19937_64 rng(0xf066'0000u + static_cast<unsigned>(GetParam()));
  net::TableGen6Config table_config;
  table_config.size = 500 + rng() % 3'000;
  table_config.seed = rng();
  const net::RouteTable6 table = net::generate_table6(table_config);
  const core::RouterConfig config = random_config(rng);
  core::RouterSim6 router(table, config);
  const auto result = router.run_workload(random_profile(rng), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets,
            static_cast<std::uint64_t>(config.num_lcs) * config.packets_per_lc);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(TenConfigs, FuzzV6Test, ::testing::Range(0, 10));

}  // namespace
