// Property suite for the traffic-aware partitioner (partition/weighted.h):
//   (a) uniform / zero / empty weight vectors reproduce the count-balanced
//       partition bit-for-bit (same control bits, same group→LC map, same
//       fragment contents) — the weighted path is a strict superset;
//   (b) well-formedness under random weight vectors: every prefix lives in
//       exactly its home fragments, fragment sizes conserve replica counts,
//       and home-LC LPM agrees with the full-table oracle;
//   (c) the weighted assignment's max per-LC expected load never exceeds
//       the count-balanced assignment's under skewed (Zipf) weights, fuzzed
//       across ψ ∈ {4, 8, 16} up to make_rt_internet(100k) — and expected
//       loads conserve total weight (the partition_balance rule).
#include "partition/weighted.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "net/prefix6.h"
#include "net/table_gen.h"
#include "partition/partition6.h"
#include "partition/rot_partition.h"
#include "trie/binary_trie.h"
#include "trie/binary_trie6.h"

namespace {

using namespace spal;
using net::RouteTable;
using net::RouteTable6;
using partition::Partition6Config;
using partition::PartitionConfig;
using partition::RotPartition;
using partition::RotPartition6;

RouteTable test_table(std::size_t size, std::uint64_t seed) {
  net::TableGenConfig config;
  config.size = size;
  config.seed = seed;
  return net::generate_table(config);
}

std::vector<int> to_vec(std::span<const int> s) {
  return std::vector<int>(s.begin(), s.end());
}

/// Zipf(alpha) mass assigned to entries in a random order — the skewed
/// weight shape TraceGenerator::prefix_weights() produces in practice.
std::vector<double> zipf_weights(std::size_t n, double alpha,
                                 std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<double> weights(n, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double w = 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    weights[order[r]] = w;
    total += w;
  }
  for (double& w : weights) w /= total;
  return weights;
}

std::vector<double> random_weights(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<double> weights(n);
  for (double& w : weights) w = unit(rng);
  return weights;
}

double sum(std::span<const double> v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

double max_of(std::span<const double> v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, x);
  return m;
}

// --- (a) uniform weights are the count-balanced degenerate case ---

TEST(WeightedPartition, UniformWeightsReproduceCountBalancedV4) {
  const RouteTable table = test_table(5'000, 42);
  for (const int psi : {4, 8, 16}) {
    const RotPartition base(table, psi);
    const std::vector<std::vector<double>> degenerate = {
        {},                                        // empty
        std::vector<double>(table.size(), 1.0),    // uniform
        std::vector<double>(table.size(), 0.0),    // all-zero
        std::vector<double>(table.size(), 0.37),   // uniform, non-unit
    };
    for (const auto& weights : degenerate) {
      PartitionConfig config;
      config.weights = weights;
      const RotPartition weighted(table, psi, config);
      EXPECT_EQ(to_vec(weighted.control_bits()), to_vec(base.control_bits()))
          << "psi=" << psi;
      EXPECT_EQ(to_vec(weighted.group_to_lc()), to_vec(base.group_to_lc()))
          << "psi=" << psi;
      for (int lc = 0; lc < psi; ++lc) {
        EXPECT_EQ(weighted.table_of(lc), base.table_of(lc))
            << "psi=" << psi << " lc=" << lc;
      }
    }
  }
}

TEST(WeightedPartition, UniformWeightsReproduceCountBalancedV6) {
  const RouteTable6 table = net::make_rt6_internet(4'000);
  for (const int psi : {4, 8, 16}) {
    const RotPartition6 base(table, psi);
    for (const auto& weights :
         {std::vector<double>{}, std::vector<double>(table.size(), 2.5)}) {
      Partition6Config config;
      config.weights = weights;
      const RotPartition6 weighted(table, psi, config);
      EXPECT_EQ(to_vec(weighted.control_bits()), to_vec(base.control_bits()))
          << "psi=" << psi;
      EXPECT_EQ(to_vec(weighted.group_to_lc()), to_vec(base.group_to_lc()))
          << "psi=" << psi;
      for (int lc = 0; lc < psi; ++lc) {
        EXPECT_EQ(weighted.table_of(lc), base.table_of(lc))
            << "psi=" << psi << " lc=" << lc;
      }
    }
  }
}

// --- (b) well-formedness under arbitrary weight vectors ---

TEST(WeightedPartition, RandomWeightsKeepPartitionWellFormedV4) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const RouteTable table = test_table(3'000, 907 + seed);
    const std::vector<double> weights = random_weights(table.size(), seed);
    for (const int psi : {4, 8, 16}) {
      PartitionConfig config;
      config.weights = weights;
      const RotPartition rot(table, psi, config);

      // η control bits cover all 2^η groups; every group maps to a valid LC.
      const std::size_t eta = rot.control_bits().size();
      ASSERT_EQ(std::size_t{1} << eta, rot.group_to_lc().size());
      for (const int lc : rot.group_to_lc()) {
        EXPECT_GE(lc, 0);
        EXPECT_LT(lc, psi);
      }

      // Each prefix lives in exactly its home fragments, nowhere else, with
      // its next hop intact; fragment sizes conserve the replica count.
      std::size_t total_replicas = 0;
      for (const auto& entry : table.entries()) {
        const std::vector<int> homes = rot.homes_of(entry.prefix);
        ASSERT_FALSE(homes.empty());
        total_replicas += homes.size();
        for (int lc = 0; lc < psi; ++lc) {
          const bool is_home =
              std::find(homes.begin(), homes.end(), lc) != homes.end();
          const auto found = rot.table_of(lc).find(entry.prefix);
          EXPECT_EQ(found.has_value(), is_home)
              << "psi=" << psi << " lc=" << lc;
          if (found) {
            EXPECT_EQ(*found, entry.next_hop);
          }
        }
      }
      const auto sizes = rot.partition_sizes();
      EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
                total_replicas);

      // Home-LC LPM matches the full-table oracle for random addresses.
      const trie::BinaryTrie oracle(table);
      std::vector<trie::BinaryTrie> fragments;
      fragments.reserve(static_cast<std::size_t>(psi));
      for (int lc = 0; lc < psi; ++lc) fragments.emplace_back(rot.table_of(lc));
      std::mt19937_64 rng(0xabcd0000 + seed);
      std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
      for (int i = 0; i < 2'000; ++i) {
        const auto& prefix = table.entries()[pick(rng)].prefix;
        const net::Ipv4Addr addr = net::random_address_in(prefix, rng);
        const int home = rot.home_of(addr);
        ASSERT_GE(home, 0);
        ASSERT_LT(home, psi);
        EXPECT_EQ(fragments[static_cast<std::size_t>(home)].lookup(addr),
                  oracle.lookup(addr));
      }
    }
  }
}

TEST(WeightedPartition, RandomWeightsKeepPartitionWellFormedV6) {
  const RouteTable6 table = net::make_rt6_internet(2'000);
  const std::vector<double> weights = random_weights(table.size(), 7);
  for (const int psi : {4, 16}) {
    Partition6Config config;
    config.weights = weights;
    const RotPartition6 rot(table, psi, config);

    for (const auto& entry : table.entries()) {
      const std::vector<int> homes = rot.homes_of(entry.prefix);
      ASSERT_FALSE(homes.empty());
      for (int lc = 0; lc < psi; ++lc) {
        const bool is_home =
            std::find(homes.begin(), homes.end(), lc) != homes.end();
        EXPECT_EQ(rot.table_of(lc).find(entry.prefix).has_value(), is_home)
            << "psi=" << psi << " lc=" << lc;
      }
    }

    const trie::BinaryTrie6 oracle(table);
    std::vector<trie::BinaryTrie6> fragments;
    fragments.reserve(static_cast<std::size_t>(psi));
    for (int lc = 0; lc < psi; ++lc) fragments.emplace_back(rot.table_of(lc));
    std::mt19937_64 rng(0x6666);
    std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
    for (int i = 0; i < 1'000; ++i) {
      const auto& prefix = table.entries()[pick(rng)].prefix;
      const net::Ipv6Addr addr = net::random_address_in6(prefix, rng);
      const int home = rot.home_of(addr);
      ASSERT_GE(home, 0);
      ASSERT_LT(home, psi);
      EXPECT_EQ(fragments[static_cast<std::size_t>(home)].lookup(addr),
                oracle.lookup(addr));
    }
  }
}

// --- (c) weighted max expected load never exceeds count-balanced ---

void expect_weighted_no_worse(const RouteTable& table,
                              std::span<const double> weights, int psi) {
  const RotPartition count_balanced(table, psi);
  PartitionConfig config;
  config.weights.assign(weights.begin(), weights.end());
  const RotPartition weighted(table, psi, config);

  const std::vector<double> loads_cb =
      partition::expected_loads(count_balanced, table, weights);
  const std::vector<double> loads_w =
      partition::expected_loads(weighted, table, weights);

  // Conservation: Σ per-LC expected loads == total trace weight (the
  // partition_balance rule spal_report --check enforces).
  const double total = sum(weights);
  EXPECT_NEAR(sum(loads_cb), total, 1e-9 * std::max(1.0, total));
  EXPECT_NEAR(sum(loads_w), total, 1e-9 * std::max(1.0, total));

  EXPECT_LE(max_of(loads_w), max_of(loads_cb) + 1e-9 * std::max(1.0, total))
      << "psi=" << psi << " table=" << table.size();
}

TEST(WeightedPartition, SkewedWeightsNeverWorseThanCountBalancedV4) {
  for (const std::uint64_t seed : {21u, 22u}) {
    for (const std::size_t size : {2'000u, 20'000u}) {
      const RouteTable table = test_table(size, 500 + seed);
      const std::vector<double> weights =
          zipf_weights(table.size(), 1.0, seed);
      for (const int psi : {4, 8, 16}) {
        expect_weighted_no_worse(table, weights, psi);
      }
    }
  }
}

TEST(WeightedPartition, SkewedWeightsNeverWorseInternet100k) {
  const RouteTable table = net::make_rt_internet(100'000);
  const std::vector<double> weights = zipf_weights(table.size(), 1.0, 99);
  for (const int psi : {4, 8, 16}) {
    expect_weighted_no_worse(table, weights, psi);
  }
}

TEST(WeightedPartition, SkewedWeightsNeverWorseThanCountBalancedV6) {
  const RouteTable6 table = net::make_rt6_internet(20'000);
  const std::vector<double> weights = zipf_weights(table.size(), 1.0, 17);
  for (const int psi : {4, 8, 16}) {
    const RotPartition6 count_balanced(table, psi);
    Partition6Config config;
    config.weights = weights;
    const RotPartition6 weighted(table, psi, config);

    const std::vector<double> loads_cb =
        partition::expected_loads6(count_balanced, table, weights);
    const std::vector<double> loads_w =
        partition::expected_loads6(weighted, table, weights);

    const double total = sum(weights);
    EXPECT_NEAR(sum(loads_cb), total, 1e-9);
    EXPECT_NEAR(sum(loads_w), total, 1e-9);
    EXPECT_LE(max_of(loads_w), max_of(loads_cb) + 1e-9) << "psi=" << psi;
  }
}

// --- fairness helpers behave at the boundaries ---

TEST(WeightedPartition, FairnessHelpers) {
  const std::vector<double> balanced = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(partition::jain_fairness(balanced), 1.0, 1e-12);
  EXPECT_NEAR(partition::max_share(balanced), 0.25, 1e-12);

  const std::vector<double> pinned = {4.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(partition::jain_fairness(pinned), 0.25, 1e-12);
  EXPECT_NEAR(partition::max_share(pinned), 1.0, 1e-12);

  EXPECT_EQ(partition::jain_fairness(std::vector<double>{}), 1.0);
  EXPECT_EQ(partition::max_share(std::vector<double>{}), 0.0);
  EXPECT_TRUE(partition::uniform_weights(std::vector<double>{}));
  EXPECT_TRUE(partition::uniform_weights(std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(partition::uniform_weights(std::vector<double>{2.0, 1.0}));
}

}  // namespace
