// Paper-level integration tests: the qualitative claims of Secs. 4-5 must
// hold on reduced-scale versions of the experiments.
#include <gtest/gtest.h>

#include "core/spal.h"

namespace {

using namespace spal;

net::RouteTable mid_table() {
  net::TableGenConfig config;
  config.size = 20'000;
  config.seed = 301;
  return net::generate_table(config);
}

core::RouterConfig quick(int num_lcs) {
  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 20'000;
  return config;
}

TEST(PaperClaims, PartitioningCutsPerLcSramForEveryTrie) {
  // Fig. 3's direction: per-LC trie storage after fragmentation is far
  // below the unpartitioned trie, for DP, Lulea and LC tries alike.
  const net::RouteTable table = mid_table();
  const partition::RotPartition rot(table, 4);
  for (const trie::TrieKind kind :
       {trie::TrieKind::kDp, trie::TrieKind::kLulea, trie::TrieKind::kLc}) {
    const auto whole = trie::build_lpm(kind, table);
    for (int lc = 0; lc < 4; ++lc) {
      const auto part = trie::build_lpm(kind, rot.table_of(lc));
      EXPECT_LT(static_cast<double>(part->storage_bytes()),
                0.6 * static_cast<double>(whole->storage_bytes()))
          << trie::to_string(kind) << " lc=" << lc;
    }
  }
}

TEST(PaperClaims, SramSavingExceedsLrCacheCost) {
  // Sec. 4's closing argument: the per-LC SRAM saved by partitioning
  // dwarfs the 24 KB LR-cache added (4K blocks x 6 bytes).
  const net::RouteTable table = net::make_rt1();
  const partition::RotPartition rot(table, 4);
  const auto whole = trie::build_lpm(trie::TrieKind::kLulea, table);
  constexpr std::size_t kLrCacheBytes = 4096 * 6;
  for (int lc = 0; lc < 4; ++lc) {
    const auto part = trie::build_lpm(trie::TrieKind::kLulea, rot.table_of(lc));
    ASSERT_GT(whole->storage_bytes(), part->storage_bytes());
    EXPECT_GT(whole->storage_bytes() - part->storage_bytes(), kLrCacheBytes);
  }
}

TEST(PaperClaims, MeanLookupImprovesWithPsi) {
  // Fig. 6's direction: ψ=16 beats ψ=4 beats ψ=1 on the same workload.
  const net::RouteTable table = mid_table();
  trace::WorkloadProfile profile = trace::profile_l92_0();
  profile.flows = 60'000;
  double previous = 1e18;
  for (const int psi : {1, 4, 16}) {
    core::RouterSim router(table, quick(psi));
    const double mean = router.run_workload(profile).mean_lookup_cycles();
    EXPECT_LT(mean, previous) << "psi=" << psi;
    previous = mean;
  }
}

TEST(PaperClaims, SpalBeatsConventionalRouterHeadline) {
  // The paper's headline: SPAL ψ=16 vs a conventional router whose mean is
  // the FE time (40 cycles, queueing "ignored optimistically"): >4x faster.
  const net::RouteTable table = mid_table();
  core::RouterSim router(table, quick(16));
  const auto result = router.run_workload(trace::profile_d75());
  EXPECT_LT(result.mean_lookup_cycles() * 4.0, 40.0);
}

TEST(PaperClaims, SpalBeatsCacheOnlyRouter) {
  // Sec. 5.2's comparison against [6]: caches without partitioning cover
  // the whole table per LC and cannot share results, so SPAL at ψ=8 must
  // beat cache-only at the same β.
  const net::RouteTable table = mid_table();
  trace::WorkloadProfile profile = trace::profile_l92_1();
  profile.flows = 50'000;
  core::RouterConfig spal_cfg = quick(8);
  core::RouterConfig cache_cfg = quick(8);
  cache_cfg.partition = false;
  core::RouterSim spal_router(table, spal_cfg);
  core::RouterSim cache_router(table, cache_cfg);
  EXPECT_LT(spal_router.run_workload(profile).mean_lookup_cycles(),
            cache_router.run_workload(profile).mean_lookup_cycles());
}

TEST(PaperClaims, VictimCacheHelps) {
  // Sec. 3.2: the 8-block victim cache avoids most conflict misses.
  const net::RouteTable table = mid_table();
  core::RouterConfig with = quick(4);
  core::RouterConfig without = quick(4);
  without.cache.victim_blocks = 0;
  core::RouterSim router_with(table, with);
  core::RouterSim router_without(table, without);
  const auto a = router_with.run_workload(trace::profile_d81());
  const auto b = router_without.run_workload(trace::profile_d81());
  EXPECT_GE(a.cache_total.hit_rate() + 1e-9, b.cache_total.hit_rate());
  EXPECT_GT(a.cache_total.victim_hits, 0u);
}

TEST(PaperClaims, FePressureDropsAsPsiGrows) {
  // More LCs -> more FEs and better cache coverage -> the busiest FE cools.
  const net::RouteTable table = mid_table();
  trace::WorkloadProfile profile = trace::profile_l92_0();
  profile.flows = 60'000;
  core::RouterSim psi2(table, quick(2));
  core::RouterSim psi16(table, quick(16));
  EXPECT_GT(psi2.run_workload(profile).max_fe_utilization,
            psi16.run_workload(profile).max_fe_utilization);
}

TEST(PaperClaims, LengthPartitionBaselineDoesNotShrinkStorage) {
  // Sec. 2.3: the [1] baseline keeps every per-length subset at each LC, so
  // total storage per LC equals the whole table regardless of ψ.
  const net::RouteTable table = mid_table();
  const auto buckets = partition::partition_by_length(table);
  std::size_t total_entries = 0;
  for (const auto& bucket : buckets) total_entries += bucket.size();
  EXPECT_EQ(total_entries, table.size());
  // Contrast with SPAL at ψ=4: each LC keeps ~1/4 of the prefixes.
  const partition::RotPartition rot(table, 4);
  for (const std::size_t size : rot.partition_sizes()) {
    EXPECT_LT(static_cast<double>(size), 0.45 * static_cast<double>(table.size()));
  }
}

TEST(PaperClaims, HitRatesReachPaperBandAtPaperScale) {
  // Sec. 1 cites >=0.93 hit rates with 4K blocks; our tuned workloads must
  // land in that band for the WorldCup-like traces at ψ=16.
  const net::RouteTable table = net::make_rt2();
  core::RouterConfig config = core::spal_default_config(16);
  config.packets_per_lc = 30'000;
  core::RouterSim router(table, config);
  const auto result = router.run_workload(trace::profile_d75());
  EXPECT_GT(result.cache_total.hit_rate(), 0.90);
}

}  // namespace
