// Tests for the beyond-the-paper extensions: the Gupta 24/8 hardware table,
// selective cache invalidation, FE parallelism, and update-policy modelling.
#include <gtest/gtest.h>

#include "core/spal.h"

namespace {

using namespace spal;
using cache::LrCache;
using cache::LrCacheConfig;
using cache::Origin;
using cache::ProbeState;

net::RouteTable ext_table() {
  net::TableGenConfig config;
  config.size = 2'000;
  config.seed = 501;
  return net::generate_table(config);
}

// --- Gupta 24/8 hardware table ---

TEST(GuptaTrie, AtMostTwoAccessesPerLookup) {
  const net::RouteTable table = ext_table();
  const trie::GuptaTrie trie(table);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 2'000; ++i) {
    trie::MemAccessCounter counter;
    (void)trie.lookup_counted(net::Ipv4Addr{static_cast<std::uint32_t>(rng())},
                              counter);
    EXPECT_GE(counter.total(), 1u);
    EXPECT_LE(counter.total(), 2u);
  }
}

TEST(GuptaTrie, LevelOneTableIsThirtyTwoMegabytes) {
  net::RouteTable table;
  table.add(*net::Prefix::parse("10.0.0.0/8"), 1);
  const trie::GuptaTrie trie(table);
  EXPECT_GE(trie.storage_bytes(), std::size_t{32} * 1024 * 1024);
  EXPECT_EQ(trie.chunk_count(), 0u);
}

TEST(GuptaTrie, LongPrefixesCreateChunks) {
  net::RouteTable table;
  table.add(*net::Prefix::parse("10.1.2.0/25"), 1);
  table.add(*net::Prefix::parse("10.1.2.128/25"), 2);
  table.add(*net::Prefix::parse("10.1.3.0/26"), 3);
  const trie::GuptaTrie trie(table);
  EXPECT_EQ(trie.chunk_count(), 2u);  // distinct /24 slots: 10.1.2, 10.1.3
  EXPECT_EQ(trie.lookup(net::Ipv4Addr{0x0A010281u}), 2u);
  EXPECT_EQ(trie.lookup(net::Ipv4Addr{0x0A010301u}), 3u);
  EXPECT_EQ(trie.lookup(net::Ipv4Addr{0x0A010341u}), net::kNoRoute);
}

TEST(GuptaTrie, LeafPushingIntoChunks) {
  net::RouteTable table;
  table.add(*net::Prefix::parse("10.1.2.0/24"), 7);
  table.add(*net::Prefix::parse("10.1.2.128/26"), 8);
  const trie::GuptaTrie trie(table);
  EXPECT_EQ(trie.lookup(net::Ipv4Addr{0x0A010281u}), 8u);
  EXPECT_EQ(trie.lookup(net::Ipv4Addr{0x0A010201u}), 7u);  // /24 default
}

// --- Selective invalidation ---

TEST(LrCacheInvalidate, DropsOnlyCoveredBlocks) {
  LrCacheConfig config;
  config.blocks = 64;
  config.remote_fraction = 0.0;
  LrCache cache(config);
  cache.insert(net::Ipv4Addr{0x0A010101u}, 1, Origin::kLocal, 0);
  cache.insert(net::Ipv4Addr{0x0A010201u}, 2, Origin::kLocal, 1);
  cache.insert(net::Ipv4Addr{0x0B000001u}, 3, Origin::kLocal, 2);
  const std::size_t dropped =
      cache.invalidate_matching(*net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(cache.probe(net::Ipv4Addr{0x0A010101u}, 3).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(net::Ipv4Addr{0x0A010201u}, 4).state, ProbeState::kMiss);
  EXPECT_EQ(cache.probe(net::Ipv4Addr{0x0B000001u}, 5).state, ProbeState::kHit);
}

TEST(LrCacheInvalidate, ReachesVictimCache) {
  LrCacheConfig config;
  config.blocks = 4;  // one set
  config.remote_fraction = 0.0;
  config.victim_blocks = 8;
  LrCache cache(config);
  for (std::uint32_t tag = 0; tag < 6; ++tag) {
    cache.insert(net::Ipv4Addr{0x0A000000u + tag * 4}, tag, Origin::kLocal, tag);
  }
  // Some of the six live in the victim cache now; all are covered.
  const std::size_t dropped =
      cache.invalidate_matching(*net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(dropped, 6u);
}

TEST(LrCacheInvalidate, LeavesWaitingBlocks) {
  LrCacheConfig config;
  config.blocks = 16;
  LrCache cache(config);
  ASSERT_TRUE(cache.reserve(net::Ipv4Addr{0x0A000001u}, Origin::kLocal, 0));
  EXPECT_EQ(cache.invalidate_matching(*net::Prefix::parse("10.0.0.0/8")), 0u);
  EXPECT_EQ(cache.probe(net::Ipv4Addr{0x0A000001u}, 1).state, ProbeState::kWaiting);
  EXPECT_TRUE(cache.fill(net::Ipv4Addr{0x0A000001u}, 9, 2));
}

// --- Update policy in the router ---

TEST(UpdatePolicy, SelectiveKeepsHitRateUnderFrequentUpdates) {
  trace::WorkloadProfile profile = trace::profile_d75();
  profile.flows = 2'000;
  core::RouterConfig flush_config = core::spal_default_config(2);
  flush_config.packets_per_lc = 10'000;
  flush_config.flush_interval_cycles = 2'000;
  core::RouterConfig selective_config = flush_config;
  selective_config.update_policy =
      core::RouterConfig::UpdatePolicy::kSelectiveInvalidate;
  const net::RouteTable table = ext_table();
  core::RouterSim flush_router(table, flush_config);
  core::RouterSim selective_router(table, selective_config);
  const auto flush_result = flush_router.run_workload(profile, true);
  const auto selective_result = selective_router.run_workload(profile, true);
  EXPECT_EQ(flush_result.verify_mismatches, 0u);
  EXPECT_EQ(selective_result.verify_mismatches, 0u);
  EXPECT_GT(selective_result.cache_total.hit_rate(),
            flush_result.cache_total.hit_rate());
  EXPECT_GT(selective_result.updates_applied, 0u);
  EXPECT_EQ(selective_result.updates_applied, flush_result.updates_applied);
}

// --- FE parallelism ---

TEST(FeParallelism, MoreEnginesCutQueueingUnderLoad) {
  core::RouterConfig one = core::conventional_config(2);
  one.packets_per_lc = 5'000;
  one.line_rate_gbps = 40.0;  // 40-cycle service, ~10-cycle arrivals: overload
  core::RouterConfig four = one;
  four.fe_parallelism = 4;
  const net::RouteTable table = ext_table();
  trace::WorkloadProfile profile = trace::profile_d75();
  profile.flows = 2'000;
  core::RouterSim router_one(table, one);
  core::RouterSim router_four(table, four);
  const auto result_one = router_one.run_workload(profile, true);
  const auto result_four = router_four.run_workload(profile, true);
  EXPECT_EQ(result_four.verify_mismatches, 0u);
  // 4 engines cover the 4x oversubscription; 1 engine queues unboundedly.
  EXPECT_LT(result_four.mean_lookup_cycles() * 5.0,
            result_one.mean_lookup_cycles());
  EXPECT_LE(result_four.max_fe_utilization, 1.0);
}

TEST(FeParallelism, NoEffectWhenUnderloaded) {
  core::RouterConfig one = core::spal_default_config(2);
  one.packets_per_lc = 5'000;
  core::RouterConfig four = one;
  four.fe_parallelism = 4;
  const net::RouteTable table = ext_table();
  trace::WorkloadProfile profile = trace::profile_d75();
  profile.flows = 2'000;
  core::RouterSim router_one(table, one);
  core::RouterSim router_four(table, four);
  const double mean_one = router_one.run_workload(profile).mean_lookup_cycles();
  const double mean_four = router_four.run_workload(profile).mean_lookup_cycles();
  EXPECT_NEAR(mean_one, mean_four, 0.5 + 0.1 * mean_one);
}

}  // namespace
