// Configuration factories, result helpers, and the family policies'
// individual pieces.
#include <gtest/gtest.h>

#include "core/router_sim.h"
#include "core/router_sim6.h"

namespace {

using namespace spal;

TEST(ConfigFactories, SpalDefaultsMatchThePaper) {
  const core::RouterConfig config = core::spal_default_config(16);
  EXPECT_EQ(config.num_lcs, 16);
  EXPECT_EQ(config.cache.blocks, 4096u);      // β = 4K
  EXPECT_EQ(config.cache.associativity, 4u);  // 4-way
  EXPECT_DOUBLE_EQ(config.cache.remote_fraction, 0.5);  // γ = 50%
  EXPECT_EQ(config.cache.victim_blocks, 8u);
  EXPECT_DOUBLE_EQ(config.line_rate_gbps, 40.0);
  EXPECT_EQ(config.fe_service_cycles, 40);    // Lulea matching time
  EXPECT_EQ(config.trie, trie::TrieKind::kLulea);
  EXPECT_TRUE(config.partition);
  EXPECT_TRUE(config.use_lr_cache);
  EXPECT_TRUE(config.early_reservation);
  EXPECT_EQ(config.flush_interval_cycles, 0u);
}

TEST(ConfigFactories, ConventionalDisablesBothMechanisms) {
  const core::RouterConfig config = core::conventional_config(8);
  EXPECT_FALSE(config.partition);
  EXPECT_FALSE(config.use_lr_cache);
  EXPECT_EQ(config.num_lcs, 8);
}

TEST(ConfigFactories, CacheOnlyKeepsTheCache) {
  const core::RouterConfig config = core::cache_only_config(8);
  EXPECT_FALSE(config.partition);
  EXPECT_TRUE(config.use_lr_cache);
}

TEST(RouterResult, RateHelpersFollowTheArithmetic) {
  core::RouterResult result;
  for (int i = 0; i < 100; ++i) result.latency.record(10);  // 10 cycles = 50 ns
  EXPECT_DOUBLE_EQ(result.mean_lookup_cycles(), 10.0);
  EXPECT_EQ(result.worst_lookup_cycles(), 10u);
  // 20 Mpps per LC at 50 ns/lookup; x16 LCs = 320 Mpps.
  EXPECT_NEAR(result.router_packets_per_second(16), 320e6, 1e3);
}

TEST(V4Family, HashBitsIsTheAddress) {
  EXPECT_EQ(core::V4Family::hash_bits(net::Ipv4Addr{0xDEADBEEFu}), 0xDEADBEEFu);
}

TEST(V6Family, HashBitsMixesBothHalves) {
  const net::Ipv6Addr a{1, 0}, b{0, 1}, c{1, 1};
  EXPECT_NE(core::V6Family::hash_bits(a), core::V6Family::hash_bits(b));
  EXPECT_NE(core::V6Family::hash_bits(a), core::V6Family::hash_bits(c));
}

TEST(V4Family, BuildFeHonoursTrieKind) {
  net::RouteTable table;
  table.add(*net::Prefix::parse("10.0.0.0/8"), 1);
  core::RouterConfig config = core::spal_default_config(1);
  config.trie = trie::TrieKind::kLc;
  const auto fe = core::V4Family::build_fe(table, config);
  EXPECT_EQ(fe->name(), "lc");
  EXPECT_EQ(core::V4Family::fe_lookup(fe, net::Ipv4Addr{0x0A000001u}), 1u);
  EXPECT_GT(core::V4Family::fe_storage(fe), 0u);
}

TEST(V6Family, FeAndOracleAgree) {
  net::TableGen6Config table_config;
  table_config.size = 500;
  table_config.seed = 901;
  const net::RouteTable6 table = net::generate_table6(table_config);
  const core::RouterConfig config = core::spal_default_config(1);
  const auto fe = core::V6Family::build_fe(table, config);
  const auto oracle = core::V6Family::build_oracle(table);
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 500; ++i) {
    const auto addr =
        net::random_address_in6(table.entries()[pick(rng)].prefix, rng);
    EXPECT_EQ(core::V6Family::fe_lookup(fe, addr),
              core::V6Family::oracle_lookup(oracle, addr));
  }
}

}  // namespace
