#include "net/route_table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using spal::net::Ipv4Addr;
using spal::net::kNoRoute;
using spal::net::Prefix;
using spal::net::RouteEntry;
using spal::net::RouteTable;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(RouteTable, StartsEmpty) {
  const RouteTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

TEST(RouteTable, AddAndFind) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 3);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(p("10.0.0.0/8")), std::optional<spal::net::NextHop>(3));
  EXPECT_FALSE(table.find(p("10.0.0.0/9")).has_value());
}

TEST(RouteTable, AddReplacesExisting) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 3);
  table.add(p("10.0.0.0/8"), 7);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.find(p("10.0.0.0/8")), 7u);
}

TEST(RouteTable, ConstructorDeduplicatesLastWins) {
  const RouteTable table({{p("10.0.0.0/8"), 1},
                          {p("10.0.0.0/8"), 2},
                          {p("192.0.2.0/24"), 3}});
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(*table.find(p("10.0.0.0/8")), 2u);
}

TEST(RouteTable, EntriesSortedByBitsThenLength) {
  const RouteTable table({{p("192.0.2.0/24"), 1},
                          {p("10.0.0.0/8"), 2},
                          {p("10.0.0.0/16"), 3}});
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].prefix, p("10.0.0.0/8"));
  EXPECT_EQ(entries[1].prefix, p("10.0.0.0/16"));
  EXPECT_EQ(entries[2].prefix, p("192.0.2.0/24"));
}

TEST(RouteTable, RemovePresentAndAbsent) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  EXPECT_FALSE(table.remove(p("10.0.0.0/9")));
  EXPECT_TRUE(table.remove(p("10.0.0.0/8")));
  EXPECT_FALSE(table.remove(p("10.0.0.0/8")));
  EXPECT_TRUE(table.empty());
}

TEST(RouteTable, LookupLinearLongestWins) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.1.0.0/16"), 2);
  table.add(p("10.1.2.0/24"), 3);
  EXPECT_EQ(table.lookup_linear(Ipv4Addr{0x0A010203u}), 3u);
  EXPECT_EQ(table.lookup_linear(Ipv4Addr{0x0A01FF00u}), 2u);
  EXPECT_EQ(table.lookup_linear(Ipv4Addr{0x0AFF0000u}), 1u);
  EXPECT_EQ(table.lookup_linear(Ipv4Addr{0x0B000000u}), kNoRoute);
}

TEST(RouteTable, LookupLinearDefaultRouteCatchesAll) {
  RouteTable table;
  table.add(p("0.0.0.0/0"), 9);
  table.add(p("10.0.0.0/8"), 1);
  EXPECT_EQ(table.lookup_linear(Ipv4Addr{0x0A000001u}), 1u);
  EXPECT_EQ(table.lookup_linear(Ipv4Addr{0xC0000001u}), 9u);
}

TEST(RouteTable, LookupLinearEmptyTable) {
  EXPECT_EQ(RouteTable{}.lookup_linear(Ipv4Addr{42u}), kNoRoute);
}

TEST(RouteTable, LengthHistogram) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.1.0.0/16"), 2);
  table.add(p("10.2.0.0/16"), 3);
  table.add(p("1.2.3.4/32"), 4);
  const auto hist = table.length_histogram();
  EXPECT_EQ(hist[8], 1u);
  EXPECT_EQ(hist[16], 2u);
  EXPECT_EQ(hist[32], 1u);
  EXPECT_EQ(hist[24], 0u);
}

TEST(RouteTable, CountLengthAtMost) {
  RouteTable table;
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("10.1.0.0/16"), 2);
  table.add(p("1.2.3.4/32"), 3);
  EXPECT_EQ(table.count_length_at_most(8), 1u);
  EXPECT_EQ(table.count_length_at_most(24), 2u);
  EXPECT_EQ(table.count_length_at_most(32), 3u);
  EXPECT_EQ(table.count_length_at_most(0), 0u);
}

TEST(RouteTable, SaveLoadRoundTrip) {
  RouteTable table;
  table.add(p("0.0.0.0/0"), 0);
  table.add(p("10.0.0.0/8"), 1);
  table.add(p("192.0.2.0/24"), 2);
  table.add(p("1.2.3.4/32"), 3);
  std::stringstream stream;
  table.save(stream);
  const auto loaded = RouteTable::load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, table);
}

TEST(RouteTable, LoadSkipsCommentsAndBlankLines) {
  std::stringstream stream("# comment\n\n10.0.0.0/8 5\n");
  const auto loaded = RouteTable::load(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(*loaded->find(p("10.0.0.0/8")), 5u);
}

TEST(RouteTable, LoadRejectsMalformedLines) {
  std::stringstream bad_prefix("10.0.0/8 5\n");
  EXPECT_FALSE(RouteTable::load(bad_prefix).has_value());
  std::stringstream missing_hop("10.0.0.0/8\n");
  EXPECT_FALSE(RouteTable::load(missing_hop).has_value());
}

TEST(RouteTable, EqualityComparesContents) {
  RouteTable a, b;
  a.add(p("10.0.0.0/8"), 1);
  b.add(p("10.0.0.0/8"), 1);
  EXPECT_EQ(a, b);
  b.add(p("192.0.2.0/24"), 2);
  EXPECT_NE(a, b);
}

}  // namespace
