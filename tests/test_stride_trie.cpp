#include "trie/stride_trie.h"

#include <gtest/gtest.h>

#include <random>

#include "net/table_gen.h"
#include "trie/binary_trie.h"

namespace {

using namespace spal;
using net::Ipv4Addr;
using net::Prefix;
using net::RouteTable;
using trie::StrideTrie;

Prefix p(const char* text) { return *Prefix::parse(text); }

TEST(StrideTrie, RejectsBadStrides) {
  const RouteTable table;
  EXPECT_THROW(StrideTrie(table, {16, 8}), std::invalid_argument);       // sums to 24
  EXPECT_THROW(StrideTrie(table, {16, 8, 8, 8}), std::invalid_argument); // sums to 40
  EXPECT_THROW(StrideTrie(table, {32, 0}), std::invalid_argument);       // zero stride
}

TEST(StrideTrie, ExpansionWithinOneLevel) {
  RouteTable table;
  table.add(p("10.0.0.0/12"), 1);  // expands to 16 slots at the 16-bit level
  const StrideTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A000000u}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A0FFFFFu}), 1u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A100000u}), net::kNoRoute);
}

TEST(StrideTrie, LongerPrefixOverridesExpansion) {
  RouteTable table;
  table.add(p("10.0.0.0/12"), 1);
  table.add(p("10.1.0.0/16"), 2);  // same level, overrides one slot
  const StrideTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010000u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A020000u}), 1u);
}

TEST(StrideTrie, SlotHoldsBothHopAndChild) {
  // A /16's slot also roots a child for a /24 beneath it: the child miss
  // must fall back to the /16.
  RouteTable table;
  table.add(p("10.1.0.0/16"), 1);
  table.add(p("10.1.2.0/24"), 2);
  const StrideTrie trie(table);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010201u}), 2u);
  EXPECT_EQ(trie.lookup(Ipv4Addr{0x0A010301u}), 1u);  // child miss -> /16
}

TEST(StrideTrie, AccessesEqualLevelsTraversed) {
  RouteTable table;
  table.add(p("10.1.0.0/16"), 1);
  table.add(p("10.1.2.0/24"), 2);
  table.add(p("10.1.2.128/25"), 3);
  const StrideTrie trie(table);  // strides 16/8/8
  trie::MemAccessCounter counter;
  (void)trie.lookup_counted(Ipv4Addr{0x0A010281u}, counter);
  EXPECT_EQ(counter.total(), 3u);  // one access per level
  counter.reset();
  (void)trie.lookup_counted(Ipv4Addr{0xC0000001u}, counter);
  EXPECT_EQ(counter.total(), 1u);  // misses at the root level
}

class StrideConfigTest : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(StrideConfigTest, OracleAgreementAcrossStrideChoices) {
  net::TableGenConfig config;
  config.size = 8'000;
  config.seed = 71;
  const RouteTable table = net::generate_table(config);
  const trie::BinaryTrie oracle(table);
  const StrideTrie trie(table, GetParam());
  std::mt19937_64 rng(0xfade);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  for (int i = 0; i < 10'000; ++i) {
    const Ipv4Addr addr =
        (i % 2 == 0)
            ? Ipv4Addr{static_cast<std::uint32_t>(rng())}
            : net::random_address_in(table.entries()[pick(rng)].prefix, rng);
    ASSERT_EQ(trie.lookup(addr), oracle.lookup(addr)) << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, StrideConfigTest,
    ::testing::Values(std::vector<int>{16, 8, 8}, std::vector<int>{8, 8, 8, 8},
                      std::vector<int>{24, 8}, std::vector<int>{4, 4, 4, 4, 4, 4, 4, 4}),
    [](const ::testing::TestParamInfo<std::vector<int>>& info) {
      std::string name;
      for (const int s : info.param) name += std::to_string(s) + "_";
      name.pop_back();
      return name;
    });

TEST(StrideTrie, MemoryGrowsWithWiderStrides) {
  net::TableGenConfig config;
  config.size = 8'000;
  config.seed = 72;
  const RouteTable table = net::generate_table(config);
  const StrideTrie narrow(table, {8, 8, 8, 8});
  const StrideTrie wide(table, {24, 8});
  // The 24/8 choice burns a 16M-slot root level (the Gupta scheme's cost);
  // the 8/8/8/8 choice is far smaller but takes more accesses.
  EXPECT_GT(wide.storage_bytes(), 10 * narrow.storage_bytes());
  const double narrow_accesses = trie::mean_accesses_per_lookup(narrow, table, 3'000, 1);
  const double wide_accesses = trie::mean_accesses_per_lookup(wide, table, 3'000, 1);
  EXPECT_LT(wide_accesses, narrow_accesses);
}

TEST(StrideTrie, EmptyAndDefaultRoute) {
  const StrideTrie empty{RouteTable{}};
  EXPECT_EQ(empty.lookup(Ipv4Addr{1u}), net::kNoRoute);
  RouteTable table;
  table.add(p("0.0.0.0/0"), 9);
  const StrideTrie with_default(table);
  EXPECT_EQ(with_default.lookup(Ipv4Addr{0xFFFFFFFFu}), 9u);
}

}  // namespace
