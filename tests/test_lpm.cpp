#include "trie/lpm.h"

#include <gtest/gtest.h>

#include "net/table_gen.h"

namespace {

using namespace spal;
using trie::TrieKind;

TEST(LpmFactory, BuildsEveryKindWithMatchingName) {
  net::TableGenConfig config;
  config.size = 500;
  config.seed = 61;
  const net::RouteTable table = net::generate_table(config);
  EXPECT_EQ(trie::build_lpm(TrieKind::kBinary, table)->name(), "binary");
  EXPECT_EQ(trie::build_lpm(TrieKind::kDp, table)->name(), "dp");
  EXPECT_EQ(trie::build_lpm(TrieKind::kLulea, table)->name(), "lulea");
  EXPECT_EQ(trie::build_lpm(TrieKind::kLc, table)->name(), "lc");
  EXPECT_EQ(trie::build_lpm(TrieKind::kGupta, table)->name(), "gupta");
  EXPECT_EQ(trie::build_lpm(TrieKind::kStride, table)->name(), "stride");
}

TEST(LpmFactory, ToStringNamesAllKinds) {
  EXPECT_EQ(trie::to_string(TrieKind::kBinary), "binary");
  EXPECT_EQ(trie::to_string(TrieKind::kDp), "dp");
  EXPECT_EQ(trie::to_string(TrieKind::kLulea), "lulea");
  EXPECT_EQ(trie::to_string(TrieKind::kLc), "lc");
  EXPECT_EQ(trie::to_string(TrieKind::kGupta), "gupta");
  EXPECT_EQ(trie::to_string(TrieKind::kStride), "stride");
}

TEST(LpmFactory, LcOptionsAreForwarded) {
  net::TableGenConfig config;
  config.size = 4'000;
  config.seed = 62;
  const net::RouteTable table = net::generate_table(config);
  trie::LpmBuildOptions dense;
  dense.lc_fill_factor = 1.0;
  trie::LpmBuildOptions sparse;
  sparse.lc_fill_factor = 0.25;
  // The fill factor must influence the built structure.
  EXPECT_NE(trie::build_lpm(TrieKind::kLc, table, dense)->storage_bytes(),
            trie::build_lpm(TrieKind::kLc, table, sparse)->storage_bytes());
}

TEST(MeanAccesses, DeterministicPerSeed) {
  net::TableGenConfig config;
  config.size = 2'000;
  config.seed = 63;
  const net::RouteTable table = net::generate_table(config);
  const auto index = trie::build_lpm(TrieKind::kLulea, table);
  EXPECT_EQ(trie::mean_accesses_per_lookup(*index, table, 1'000, 9),
            trie::mean_accesses_per_lookup(*index, table, 1'000, 9));
}

TEST(MeanAccesses, EmptyInputsGiveZero) {
  const net::RouteTable empty;
  const auto index = trie::build_lpm(TrieKind::kBinary, empty);
  EXPECT_EQ(trie::mean_accesses_per_lookup(*index, empty, 100, 1), 0.0);
}

TEST(MeanAccesses, OrderingMatchesPaperLuleaBelowDp) {
  // Sec. 5.1: Lulea ≈ 6.2-6.6 accesses, DP ≈ 16 — Lulea must be well below.
  net::TableGenConfig config;
  config.size = 40'000;
  config.seed = 64;
  const net::RouteTable table = net::generate_table(config);
  const auto lulea = trie::build_lpm(TrieKind::kLulea, table);
  const auto dp = trie::build_lpm(TrieKind::kDp, table);
  const auto binary = trie::build_lpm(TrieKind::kBinary, table);
  const double lulea_mean = trie::mean_accesses_per_lookup(*lulea, table, 5'000, 3);
  const double dp_mean = trie::mean_accesses_per_lookup(*dp, table, 5'000, 3);
  const double binary_mean = trie::mean_accesses_per_lookup(*binary, table, 5'000, 3);
  EXPECT_LT(lulea_mean, dp_mean);
  EXPECT_LT(dp_mean, binary_mean);
}

TEST(MemAccessCounter, RecordsAndResets) {
  trie::MemAccessCounter counter;
  EXPECT_EQ(counter.total(), 0u);
  counter.record();
  counter.record(5);
  EXPECT_EQ(counter.total(), 6u);
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
}

}  // namespace
