// Stress and failure-injection tests for the router simulation: tiny
// saturated caches, quota extremes, flush storms mid-flight, overload
// rates. The invariant under every distortion: each packet resolves exactly
// once with the full-table-correct next hop.
#include "core/router_sim.h"

#include <gtest/gtest.h>

#include "net/table_gen.h"

namespace {

using namespace spal;

net::RouteTable stress_table() {
  net::TableGenConfig config;
  config.size = 2'000;
  config.seed = 401;
  return net::generate_table(config);
}

trace::WorkloadProfile bursty_profile() {
  trace::WorkloadProfile profile = trace::profile_d75();
  profile.flows = 500;     // tiny population -> constant cache churn
  profile.burst_mean = 10; // long trains -> W-bit pressure
  return profile;
}

core::RouterConfig base_config(int num_lcs) {
  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 5'000;
  return config;
}

void expect_all_correct(core::RouterSim& router, const trace::WorkloadProfile& p,
                        std::uint64_t expected_packets) {
  const auto result = router.run_workload(p, /*verify=*/true);
  EXPECT_EQ(result.resolved_packets, expected_packets);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

TEST(RouterStress, TinyCacheFullySaturated) {
  // 8 blocks / 2 sets: reservations constantly fail, waiting quotas pin,
  // late inserts race replies. Correctness must survive.
  core::RouterConfig config = base_config(4);
  config.cache.blocks = 8;
  core::RouterSim router(stress_table(), config);
  expect_all_correct(router, bursty_profile(), 4u * 5'000u);
}

TEST(RouterStress, TinyCacheRecordsFailedReservations) {
  core::RouterConfig config = base_config(4);
  config.cache.blocks = 8;
  core::RouterSim router(stress_table(), config);
  trace::WorkloadProfile scattered = trace::profile_l92_0();
  scattered.flows = 50'000;  // way beyond 8 blocks
  scattered.burst_mean = 1.0;
  const auto result = router.run_workload(scattered, true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_GT(result.cache_total.failed_reservations +
                result.cache_total.quota_bypasses,
            0u);
}

TEST(RouterStress, GammaZeroNeverCachesRemote) {
  core::RouterConfig config = base_config(4);
  config.cache.remote_fraction = 0.0;
  core::RouterSim router(stress_table(), config);
  const auto result = router.run_workload(bursty_profile(), true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_GT(result.cache_total.quota_bypasses, 0u);
}

TEST(RouterStress, GammaOneNeverCachesLocal) {
  core::RouterConfig config = base_config(4);
  config.cache.remote_fraction = 1.0;
  core::RouterSim router(stress_table(), config);
  expect_all_correct(router, bursty_profile(), 4u * 5'000u);
}

TEST(RouterStress, FlushStormOrphansInFlightFills) {
  // Flushing every 200 cycles guarantees some replies come back to a
  // flushed cache (orphan fills) and some waiting lists outlive the block.
  core::RouterConfig config = base_config(8);
  config.flush_interval_cycles = 200;
  core::RouterSim router(stress_table(), config);
  const auto result = router.run_workload(bursty_profile(), true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.resolved_packets, 8u * 5'000u);
  EXPECT_GT(result.cache_total.orphan_fills, 0u);
  EXPECT_GT(result.cache_total.flushes, 100u);
}

TEST(RouterStress, OverloadRateStillCorrect) {
  // ~160 Gbps per LC: packets arrive faster than the FE can serve misses,
  // cache-port contention kicks in, queues balloon — but not correctness.
  core::RouterConfig config = base_config(4);
  config.line_rate_gbps = 160.0;
  config.packets_per_lc = 3'000;
  core::RouterSim router(stress_table(), config);
  const auto result = router.run_workload(bursty_profile(), true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_EQ(result.resolved_packets, 4u * 3'000u);
}

TEST(RouterStress, EmptyStreamsAreFine) {
  core::RouterConfig config = base_config(2);
  core::RouterSim router(stress_table(), config);
  const auto result = router.run({{}, {}}, true);
  EXPECT_EQ(result.resolved_packets, 0u);
  EXPECT_EQ(result.latency.count(), 0u);
}

TEST(RouterStress, SinglePacketPerLc) {
  core::RouterConfig config = base_config(2);
  core::RouterSim router(stress_table(), config);
  const net::RouteTable table = stress_table();
  std::vector<std::vector<net::Ipv4Addr>> streams(2);
  streams[0].push_back(table.entries()[0].prefix.range_first());
  streams[1].push_back(table.entries()[1].prefix.range_first());
  const auto result = router.run(streams, true);
  EXPECT_EQ(result.resolved_packets, 2u);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

TEST(RouterStress, IdenticalDestinationEverywhere) {
  // Every packet at every LC targets one address: maximal W-bit waiting
  // lists and cross-LC sharing; exactly correct resolution throughout.
  core::RouterConfig config = base_config(4);
  config.packets_per_lc = 1'000;
  const net::RouteTable table = stress_table();
  core::RouterSim router(table, config);
  const net::Ipv4Addr target = table.entries()[42].prefix.range_first();
  std::vector<std::vector<net::Ipv4Addr>> streams(
      4, std::vector<net::Ipv4Addr>(1'000, target));
  const auto result = router.run(streams, true);
  EXPECT_EQ(result.resolved_packets, 4'000u);
  EXPECT_EQ(result.verify_mismatches, 0u);
  // One FE lookup serves (nearly) everyone; allow a couple for races
  // between the first packets at distinct LCs.
  EXPECT_LE(result.fe_lookups, 8u);
}

TEST(RouterStress, UnroutableDestinationsResolveToNoRoute) {
  // Addresses outside every prefix: SPAL must return kNoRoute consistently
  // (verify mode compares against the oracle, which also says kNoRoute).
  core::RouterConfig config = base_config(2);
  net::RouteTable table;
  table.add(*net::Prefix::parse("10.0.0.0/8"), 1);
  core::RouterSim router(table, config);
  std::vector<std::vector<net::Ipv4Addr>> streams(
      2, std::vector<net::Ipv4Addr>(100, net::Ipv4Addr{0xC0000001u}));
  const auto result = router.run(streams, true);
  EXPECT_EQ(result.resolved_packets, 200u);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

TEST(RouterStress, ManyLcsSmallTable) {
  // ψ = 16 over a table with barely more prefixes than LCs.
  net::TableGenConfig tiny;
  tiny.size = 64;
  tiny.seed = 11;
  core::RouterConfig config = base_config(16);
  config.packets_per_lc = 500;
  core::RouterSim router(net::generate_table(tiny), config);
  trace::WorkloadProfile profile = bursty_profile();
  profile.flows = 100;
  expect_all_correct(router, profile, 16u * 500u);
}

}  // namespace
