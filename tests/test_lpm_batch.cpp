// Differential fuzz for the batched lookup pipeline: for every LPM index
// kind, lookup_batch must be bit-identical to the scalar lookup() — which in
// turn must agree with a BinaryTrie oracle — over random keys, adversarial
// shared-prefix bursts, and every batch-size shape (1, sub-lane, exactly one
// lane group, many groups, odd tails). The IPv6 LcTrie6 pipeline gets the
// same batch-vs-scalar treatment. The SIMD-dispatched pipelines (Lulea,
// LC, LC6 — trie/simd_dispatch.h) are additionally fuzzed at every dispatch
// level the CPU can run, including unaligned batch buffers and a forced
// generic run; the process-wide mode is restored after each test so a CI
// leg running under SPAL_SIMD keeps its pinned level.
#include "trie/lpm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "net/prefix6.h"
#include "net/table_gen.h"
#include "trie/binary_trie.h"
#include "trie/binary_trie6.h"
#include "trie/lc_trie6.h"
#include "trie/simd_dispatch.h"

namespace {

using namespace spal;
using trie::TrieKind;

constexpr TrieKind kAllKinds[] = {TrieKind::kBinary, TrieKind::kDp,
                                  TrieKind::kLulea,  TrieKind::kLc,
                                  TrieKind::kGupta,  TrieKind::kStride};

// Batch shapes: scalar fallback, below one lane group, exactly the API lane
// count, a multiple of it, and sizes that leave odd tails.
constexpr std::size_t kBatchSizes[] = {1, 7, trie::kLpmBatchLanes, 64};

net::RouteTable fuzz_table(std::size_t size, std::uint64_t seed) {
  net::TableGenConfig config;
  config.size = size;
  config.seed = seed;
  return net::generate_table(config);
}

/// Random keys matched to table prefixes plus uniform (often unrouted)
/// addresses and the corner addresses.
std::vector<net::Ipv4Addr> random_keys(const net::RouteTable& table,
                                       std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  std::uniform_int_distribution<std::uint32_t> any;
  std::vector<net::Ipv4Addr> keys;
  keys.reserve(count + 2);
  keys.push_back(net::Ipv4Addr{0});
  keys.push_back(net::Ipv4Addr{~std::uint32_t{0}});
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 3 == 0) {
      keys.push_back(net::Ipv4Addr{any(rng)});
    } else {
      keys.push_back(
          net::random_address_in(table.entries()[pick(rng)].prefix, rng));
    }
  }
  return keys;
}

/// Adversarial stream: long bursts of keys under one prefix, so every lane
/// of a batch group walks the same chunk/subtrie (shared lines, shared
/// chain walks), switching prefix between bursts.
std::vector<net::Ipv4Addr> burst_keys(const net::RouteTable& table,
                                      std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  std::vector<net::Ipv4Addr> keys;
  keys.reserve(count);
  while (keys.size() < count) {
    const net::Prefix prefix = table.entries()[pick(rng)].prefix;
    for (std::size_t j = 0; j < 24 && keys.size() < count; ++j) {
      keys.push_back(net::random_address_in(prefix, rng));
    }
  }
  return keys;
}

void expect_batch_matches(const trie::LpmIndex& index,
                          const trie::BinaryTrie& oracle,
                          const std::vector<net::Ipv4Addr>& keys) {
  const std::size_t n = keys.size();
  std::vector<net::NextHop> scalar(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalar[i] = index.lookup(keys[i]);
    ASSERT_EQ(scalar[i], oracle.lookup(keys[i]))
        << index.name() << " scalar diverges from oracle at key " << i;
  }
  for (const std::size_t batch : kBatchSizes) {
    std::vector<net::NextHop> batched(n, net::kNoRoute - 1);  // poison
    for (std::size_t i = 0; i < n; i += batch) {
      index.lookup_batch(keys.data() + i, std::min(batch, n - i),
                         batched.data() + i);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], scalar[i])
          << index.name() << " batch=" << batch << " diverges at key " << i;
    }
  }
}

TEST(LpmBatch, AllKindsMatchScalarAndOracleOnRandomKeys) {
  const net::RouteTable table = fuzz_table(6'000, 0xfeed'0001);
  const trie::BinaryTrie oracle(table);
  const auto keys = random_keys(table, 4'000, 0xabc1);
  for (const TrieKind kind : kAllKinds) {
    const auto index = trie::build_lpm(kind, table);
    expect_batch_matches(*index, oracle, keys);
  }
}

TEST(LpmBatch, PipelinedKindsSurviveSharedPrefixBursts) {
  const net::RouteTable table = fuzz_table(12'000, 0xfeed'0002);
  const trie::BinaryTrie oracle(table);
  const auto keys = burst_keys(table, 4'096, 0xabc2);
  // The two overridden pipelines plus dp as a default-path control.
  for (const TrieKind kind : {TrieKind::kLulea, TrieKind::kLc, TrieKind::kDp}) {
    const auto index = trie::build_lpm(kind, table);
    expect_batch_matches(*index, oracle, keys);
  }
}

TEST(LpmBatch, OddTailsAndTinyBatches) {
  const net::RouteTable table = fuzz_table(2'000, 0xfeed'0003);
  const trie::BinaryTrie oracle(table);
  const auto index = trie::build_lpm(TrieKind::kLulea, table);
  const auto lc = trie::build_lpm(TrieKind::kLc, table);
  const auto keys = random_keys(table, 509, 0xabc3);  // prime-ish length
  // Every n in [0, 2*lanes+3) as a single call, including n = 0.
  for (std::size_t n = 0; n < 2 * trie::kLpmBatchLanes + 3; ++n) {
    std::vector<net::NextHop> batched(n + 1, net::kNoRoute - 1);
    index->lookup_batch(keys.data(), n, batched.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], index->lookup(keys[i])) << "lulea n=" << n;
    }
    lc->lookup_batch(keys.data(), n, batched.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], lc->lookup(keys[i])) << "lc n=" << n;
    }
  }
  expect_batch_matches(*index, oracle, keys);
}

TEST(LpmBatch, EmptyAndDefaultRouteTables) {
  net::RouteTable empty;
  net::RouteTable default_only;
  default_only.add(net::Prefix(net::Ipv4Addr{0}, 0), 7);
  std::mt19937_64 rng(17);
  std::vector<net::Ipv4Addr> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(net::Ipv4Addr{static_cast<std::uint32_t>(rng())});
  }
  for (const net::RouteTable* table : {&empty, &default_only}) {
    const trie::BinaryTrie oracle(*table);
    for (const TrieKind kind : kAllKinds) {
      const auto index = trie::build_lpm(kind, *table);
      expect_batch_matches(*index, oracle, keys);
    }
  }
}

/// Restores the process-wide SIMD mode on scope exit, so the per-level
/// tests below don't leak their override into the rest of the suite (a CI
/// leg may be running everything under SPAL_SIMD=generic, and that setting
/// must survive).
struct SimdModeGuard {
  trie::SimdMode saved = trie::simd_mode();
  ~SimdModeGuard() { trie::set_simd_mode(saved); }
};

/// Every dispatch level this build can actually run: generic up to the
/// CPUID-detected level.
std::vector<trie::SimdMode> runnable_levels() {
  std::vector<trie::SimdMode> levels;
  for (int l = 0; l <= static_cast<int>(trie::detected_simd_level()); ++l) {
    levels.push_back(static_cast<trie::SimdMode>(l));
  }
  return levels;
}

TEST(LpmBatch, EveryDispatchLevelMatchesOracle) {
  SimdModeGuard guard;
  const net::RouteTable table = fuzz_table(8'000, 0xfeed'0004);
  const trie::BinaryTrie oracle(table);
  const auto random = random_keys(table, 3'000, 0xabc4);
  const auto bursts = burst_keys(table, 2'048, 0xabc5);
  for (const trie::SimdMode mode : runnable_levels()) {
    const trie::SimdLevel level = trie::set_simd_mode(mode);
    ASSERT_EQ(static_cast<int>(level), static_cast<int>(mode));
    // The SIMD-overridden pipelines plus dp as a dispatch-independent
    // control.
    for (const TrieKind kind :
         {TrieKind::kLulea, TrieKind::kLc, TrieKind::kDp}) {
      SCOPED_TRACE(std::string("simd=") + std::string(trie::to_string(level)));
      const auto index = trie::build_lpm(kind, table);
      expect_batch_matches(*index, oracle, random);
      expect_batch_matches(*index, oracle, bursts);
    }
  }
}

TEST(LpmBatch, UnalignedBatchBuffersAtEveryLevel) {
  SimdModeGuard guard;
  const net::RouteTable table = fuzz_table(4'000, 0xfeed'0005);
  const auto keys = random_keys(table, 600, 0xabc7);
  const auto lulea = trie::build_lpm(TrieKind::kLulea, table);
  const auto lc = trie::build_lpm(TrieKind::kLc, table);
  for (const trie::SimdMode mode : runnable_levels()) {
    trie::set_simd_mode(mode);
    for (const auto* index : {lulea.get(), lc.get()}) {
      // Start the batch at every sub-vector offset into the key array and
      // write through an offset output pointer: the kernels' vector
      // loads/stores must not assume 32-byte alignment.
      for (std::size_t off = 0; off < 9; ++off) {
        const std::size_t n = keys.size() - off - 3;
        std::vector<net::NextHop> batched(n + off, net::kNoRoute - 1);
        index->lookup_batch(keys.data() + off, n, batched.data() + off);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(batched[off + i], index->lookup(keys[off + i]))
              << index->name() << " simd=" << static_cast<int>(mode)
              << " off=" << off << " key " << i;
        }
      }
    }
  }
}

TEST(LpmBatch, ForcedGenericResolvesAndMatches) {
  SimdModeGuard guard;
  const trie::SimdLevel level = trie::set_simd_mode(trie::SimdMode::kGeneric);
  ASSERT_EQ(level, trie::SimdLevel::kGeneric);
  ASSERT_EQ(trie::resolved_simd_level(), trie::SimdLevel::kGeneric);
  const net::RouteTable table = fuzz_table(2'000, 0xfeed'0007);
  const trie::BinaryTrie oracle(table);
  const auto keys = random_keys(table, 1'000, 0xabc8);
  for (const TrieKind kind : {TrieKind::kLulea, TrieKind::kLc}) {
    const auto index = trie::build_lpm(kind, table);
    expect_batch_matches(*index, oracle, keys);
  }
}

TEST(LpmBatch6, LcTrie6MatchesScalarAndOracle) {
  net::TableGen6Config config;
  config.size = 4'000;
  config.seed = 0xfeed'0006;
  const net::RouteTable6 table = net::generate_table6(config);
  const trie::LcTrie6 index(table);
  const trie::BinaryTrie6 oracle(table);
  std::mt19937_64 rng(0xabc6);
  std::uniform_int_distribution<std::size_t> pick(0, table.size() - 1);
  std::vector<net::Ipv6Addr> keys;
  for (std::size_t i = 0; i < 3'000; ++i) {
    if (i % 3 == 0) {
      keys.push_back(net::Ipv6Addr{rng(), rng()});
    } else {
      keys.push_back(
          net::random_address_in6(table.entries()[pick(rng)].prefix, rng));
    }
  }
  const std::size_t n = keys.size();
  std::vector<net::NextHop> scalar(n);
  for (std::size_t i = 0; i < n; ++i) {
    scalar[i] = index.lookup(keys[i]);
    ASSERT_EQ(scalar[i], oracle.lookup(keys[i])) << "v6 scalar vs oracle " << i;
  }
  SimdModeGuard guard;
  for (const trie::SimdMode mode : runnable_levels()) {
    trie::set_simd_mode(mode);
    for (const std::size_t batch : kBatchSizes) {
      std::vector<net::NextHop> batched(n, net::kNoRoute - 1);
      for (std::size_t i = 0; i < n; i += batch) {
        index.lookup_batch(keys.data() + i, std::min(batch, n - i),
                           batched.data() + i);
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(batched[i], scalar[i])
            << "v6 simd=" << static_cast<int>(mode) << " batch=" << batch
            << " key " << i;
      }
    }
    // Unaligned start offsets: the 4-lane kernel's stores go through an
    // unaligned 128-bit write.
    for (std::size_t off = 1; off < 5; ++off) {
      const std::size_t m = n - off - 1;
      std::vector<net::NextHop> batched(n, net::kNoRoute - 1);
      index.lookup_batch(keys.data() + off, m, batched.data() + off);
      for (std::size_t i = 0; i < m; ++i) {
        ASSERT_EQ(batched[off + i], scalar[off + i])
            << "v6 simd=" << static_cast<int>(mode) << " off=" << off
            << " key " << i;
      }
    }
  }
}

}  // namespace
