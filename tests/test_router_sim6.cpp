// End-to-end IPv6 router tests: the Sec. 6 claim as a working system. Same
// invariants as the IPv4 router — every packet resolves exactly once with
// the full-table-correct next hop — over 128-bit destinations.
#include "core/router_sim6.h"

#include <gtest/gtest.h>

#include "core/router_sim.h"

namespace {

using namespace spal;

net::RouteTable6 v6_table(std::size_t size = 4'000) {
  net::TableGen6Config config;
  config.size = size;
  config.seed = 601;
  return net::generate_table6(config);
}

core::RouterConfig v6_config(int num_lcs) {
  core::RouterConfig config = core::spal_default_config(num_lcs);
  config.packets_per_lc = 3'000;
  config.cache.blocks = 512;
  return config;
}

trace::WorkloadProfile v6_profile() {
  trace::WorkloadProfile profile = trace::profile_d81();
  profile.flows = 2'000;
  return profile;
}

class Router6ConfigTest : public ::testing::TestWithParam<int> {};

TEST_P(Router6ConfigTest, AllPacketsResolveCorrectly) {
  const int psi = GetParam();
  core::RouterSim6 router(v6_table(), v6_config(psi));
  const auto result = router.run_workload(v6_profile(), /*verify=*/true);
  EXPECT_EQ(result.resolved_packets, static_cast<std::uint64_t>(psi) * 3'000u);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(PsiSweep, Router6ConfigTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "psi_" + std::to_string(info.param);
                         });

TEST(RouterSim6, Deterministic) {
  core::RouterSim6 router(v6_table(), v6_config(4));
  const auto a = router.run_workload(v6_profile());
  const auto b = router.run_workload(v6_profile());
  EXPECT_EQ(a.latency.total_cycles(), b.latency.total_cycles());
  EXPECT_EQ(a.fe_lookups, b.fe_lookups);
}

TEST(RouterSim6, PerLcCountersDecomposeRouterTotals) {
  // Same decomposition invariants as the IPv4 router: the per-LC
  // observability layer is shared, so both address families must satisfy
  // them.
  constexpr int kPsi = 4;
  core::RouterSim6 router(v6_table(), v6_config(kPsi));
  const auto result = router.run_workload(v6_profile());

  ASSERT_EQ(result.per_lc.size(), static_cast<std::size_t>(kPsi));
  ASSERT_EQ(result.remote_fanout.size(),
            static_cast<std::size_t>(kPsi) * kPsi);

  std::uint64_t latency_count = 0;
  for (const auto& stats : result.per_lc_latency) latency_count += stats.count();
  EXPECT_EQ(latency_count, result.latency.count());
  EXPECT_EQ(latency_count, result.resolved_packets);

  cache::LrCacheStats sum;
  std::uint64_t fe_lookups = 0;
  for (const auto& lc : result.per_lc) {
    sum.accumulate(lc.cache);
    fe_lookups += lc.fe_lookups;
  }
  EXPECT_EQ(sum.probes, result.cache_total.probes);
  EXPECT_EQ(sum.hits, result.cache_total.hits);
  EXPECT_EQ(sum.misses, result.cache_total.misses);
  EXPECT_EQ(sum.waiting_hits, result.cache_total.waiting_hits);
  EXPECT_EQ(fe_lookups, result.fe_lookups);
  EXPECT_EQ(result.cache_total.hits,
            result.cache_total.loc_hits + result.cache_total.rem_hits);

  EXPECT_EQ(result.fabric.messages,
            result.remote_requests + result.remote_replies);
  std::uint64_t fanout = 0;
  for (const std::uint64_t cell : result.remote_fanout) fanout += cell;
  EXPECT_EQ(fanout, result.remote_requests);
}

TEST(RouterSim6, CachingCutsFeLoad) {
  core::RouterSim6 router(v6_table(), v6_config(4));
  const auto result = router.run_workload(v6_profile());
  EXPECT_LT(static_cast<double>(result.fe_lookups),
            0.5 * static_cast<double>(result.resolved_packets));
  EXPECT_GT(result.cache_total.hit_rate(), 0.5);
}

TEST(RouterSim6, PartitioningImprovesMeanOverPsi) {
  const net::RouteTable6 table = v6_table(20'000);
  trace::WorkloadProfile profile = v6_profile();
  profile.flows = 20'000;
  core::RouterConfig one = v6_config(1);
  one.packets_per_lc = 10'000;
  one.cache.blocks = 4096;
  core::RouterConfig sixteen = v6_config(16);
  sixteen.packets_per_lc = 10'000;
  sixteen.cache.blocks = 4096;
  core::RouterSim6 router_one(table, one);
  core::RouterSim6 router_sixteen(table, sixteen);
  EXPECT_LT(router_sixteen.run_workload(profile).mean_lookup_cycles(),
            router_one.run_workload(profile).mean_lookup_cycles());
}

TEST(RouterSim6, PerLcStorageShrinks) {
  const net::RouteTable6 table = v6_table(20'000);
  core::RouterConfig partitioned = v6_config(8);
  core::RouterConfig replicated = v6_config(8);
  replicated.partition = false;
  core::RouterSim6 a(table, partitioned);
  core::RouterSim6 b(table, replicated);
  const auto part = a.trie_storage_bytes();
  const auto full = b.trie_storage_bytes();
  for (std::size_t i = 0; i < part.size(); ++i) {
    EXPECT_LT(static_cast<double>(part[i]), 0.45 * static_cast<double>(full[i]));
  }
}

TEST(RouterSim6, FlushAndSelectiveInvalidationWork) {
  core::RouterConfig config = v6_config(2);
  config.flush_interval_cycles = 2'000;
  config.update_policy = core::RouterConfig::UpdatePolicy::kSelectiveInvalidate;
  core::RouterSim6 router(v6_table(), config);
  const auto result = router.run_workload(v6_profile(), true);
  EXPECT_EQ(result.verify_mismatches, 0u);
  EXPECT_GT(result.updates_applied, 0u);
}

TEST(TraceGen6, DeterministicSharedPopulation) {
  const net::RouteTable6 table = v6_table();
  const trace::TraceGenerator6 gen(v6_profile(), table);
  EXPECT_EQ(gen.generate(1, 200), gen.generate(1, 200));
  EXPECT_NE(gen.generate(0, 200), gen.generate(1, 200));
  EXPECT_EQ(gen.flow_count(), 2'000u);
}

TEST(TraceGen6, DestinationsMatchTheTable) {
  const net::RouteTable6 table = v6_table();
  const trie::BinaryTrie6 oracle(table);
  const trace::TraceGenerator6 gen(v6_profile(), table);
  for (const auto& addr : gen.generate(0, 500)) {
    EXPECT_NE(oracle.lookup(addr), net::kNoRoute);
  }
}

}  // namespace
